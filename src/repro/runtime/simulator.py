"""A seeded executor for closed broadcast systems.

The paper's examples (cycle detection in Example 1, the transaction
managers of Example 2, PVM groups in Example 3) describe *closed* systems
driven entirely by their own autonomous ``-phi->`` steps — the broadcasts
and taus derivable by the rules of Table 3 without environment input.
Section 3.2 argues this step relation is the real "reduction" of a
broadcast calculus: a sender never waits for its audience, so every
enabled output fires atomically, serving all current listeners at once
(rules 10-14) while non-listeners are passed by via the discard relation
of Table 2.

The simulator makes that abstract relation executable: it repeatedly
enumerates the enabled steps (:func:`repro.core.semantics.step_transitions`,
i.e. one candidate per derivable ``p -phi-> p'``), lets a *scheduling
policy* pick one, and records the chosen action in a
:class:`~repro.runtime.trace.Trace`.  It is the deterministic,
reproducible substitute for the distributed runtime the paper informally
assumes (see DESIGN.md, substitutions): where the paper quantifies over
all maximal step sequences, a seeded run samples one of them.

Policies:

* ``random`` (default) — uniformly random among enabled steps, from a
  seeded PRNG: reproducible pseudo-fair interleaving;
* ``round_robin`` — cycles deterministically through enabled step indices;
* a callable ``(step_index, transitions) -> index`` for custom control.

Closure is maintained as in Definition 2's treatment of restriction: names
extruded by a top-level bound output (rule 5's ``nu b~ a<c~>`` labels) are
re-restricted around the residual (``rebind_extrusions``), which is sound
because a closed system has no environment to remember them.

For *verification*-style questions ("can the detector ever signal o?") use
:func:`repro.core.reduction.can_reach_barb` — exhaustive bounded search —
rather than sampling runs.  With ``repro.obs`` enabled, each run is
wrapped in a ``sim.run`` span, counts ``sim.steps`` and reports progress
per step (see docs/observability.md).
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from ..calculi import registry as _registry
from ..calculi.backend import CalculusBackend
from ..core.actions import OutputAction
from ..core.canonical import canonical_state
from ..core.names import Name
from ..core.syntax import Process, Restrict
from ..obs import metrics as _metrics, progress as _progress, tracing as _tracing
from ..obs.state import STATE as _OBS
from .trace import Trace, TraceEvent

Policy = Callable[[int, Sequence], int]


def random_policy(seed: int) -> Policy:
    rng = random.Random(seed)

    def pick(_step: int, transitions: Sequence) -> int:
        return rng.randrange(len(transitions))

    return pick


def round_robin_policy() -> Policy:
    def pick(step: int, transitions: Sequence) -> int:
        return step % len(transitions)

    return pick


def run(p: Process, *, seed: int = 0, max_steps: int = 1_000,
        policy: Policy | str = "random",
        stop_on_barb: Name | None = None,
        rebind_extrusions: bool = True,
        calculus: str | CalculusBackend | None = None) -> Trace:
    """Execute *p* for up to *max_steps* autonomous steps.

    ``rebind_extrusions`` keeps the system closed: names extruded by a
    top-level bound output are re-restricted around the residual (sound for
    a closed system — there is no environment to remember them — and it
    keeps states small).  Set ``stop_on_barb`` to end the run as soon as a
    broadcast on that channel happens (it is recorded first).

    ``calculus`` selects the broadcast semantics via
    :mod:`repro.calculi.registry` (default: the paper's ``"bpi"``).
    """
    backend = _registry.resolve(calculus)
    if policy == "random":
        policy_fn: Policy = random_policy(seed)
    elif policy == "round_robin":
        policy_fn = round_robin_policy()
    elif callable(policy):
        policy_fn = policy
    else:
        raise ValueError(f"unknown policy {policy!r}")

    with _tracing.span("sim.run",
                       policy=policy if isinstance(policy, str)
                       else "custom") as sp:
        trace = Trace()
        state = p
        for i in range(max_steps):
            moves = backend.step_transitions(state)
            if not moves:
                trace.quiescent = True
                break
            action, target = moves[policy_fn(i, moves)]
            if rebind_extrusions and isinstance(action, OutputAction) \
                    and action.binders:
                for b in reversed(action.binders):
                    target = Restrict(b, target)
            state = canonical_state(target)
            trace.events.append(TraceEvent(i, action, state.size()))
            if _OBS.enabled:
                _metrics.inc("sim.steps")
                _progress.report("sim.run", step=i, enabled=len(moves),
                                 state_size=trace.events[-1].state_size)
            if stop_on_barb is not None and \
                    isinstance(action, OutputAction) and \
                    action.chan == stop_on_barb:
                break
        trace.final = state
        sp.set(steps=trace.steps, quiescent=trace.quiescent)
    return trace


def run_until_quiescent(p: Process, *, seed: int = 0,
                        max_steps: int = 10_000,
                        calculus: str | CalculusBackend | None = None
                        ) -> Trace:
    """Run to quiescence (or the step budget); convenience wrapper."""
    return run(p, seed=seed, max_steps=max_steps, calculus=calculus)


def sample_runs(p: Process, *, seeds: Sequence[int],
                max_steps: int = 1_000,
                stop_on_barb: Name | None = None,
                calculus: str | CalculusBackend | None = None
                ) -> list[Trace]:
    """Independent seeded runs — crude statistical coverage of schedules."""
    return [run(p, seed=s, max_steps=max_steps, stop_on_barb=stop_on_barb,
                calculus=calculus)
            for s in seeds]
