"""Saturation utilities: reflexive-transitive closures over explicit LTSs.

Weak equivalences are checked as strong ones over saturated successor
relations; these helpers compute the closures once per graph.
"""

from __future__ import annotations

from typing import Sequence


def reachability_closure(successors: Sequence[frozenset[int]]) -> list[frozenset[int]]:
    """Reflexive-transitive closure of a successor relation.

    Plain iterative BFS per state; graphs here are small (thousands of
    states) and the closure is computed once, so asymptotic heroics are not
    warranted (profile first — see the benchmarks).
    """
    n = len(successors)
    closed: list[frozenset[int]] = [frozenset()] * n
    for start in range(n):
        seen = {start}
        stack = [start]
        while stack:
            s = stack.pop()
            for t in successors[s]:
                if t not in seen:
                    seen.add(t)
                    stack.append(t)
        closed[start] = frozenset(seen)
    return closed


def weak_keys(closure: Sequence[frozenset[int]],
              strong_keys: Sequence[frozenset]) -> list[frozenset]:
    """Weak observability keys: union of strong keys over the closure.

    E.g. weak barbs ``p |Down a  iff  exists p' in closure(p). p' |down a``.
    """
    return [frozenset().union(*(strong_keys[t] for t in closure[s]))
            for s in range(len(closure))]
