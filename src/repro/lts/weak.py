"""Saturation utilities: reflexive-transitive closures over LTSs.

Weak equivalences are checked as strong ones over saturated successor
relations.  Two consumers with different access patterns share the code:

* the *global* checkers saturate an explicit integer graph all at once
  (:func:`reachability_closure`) before partition refinement;
* the *on-the-fly* product core (:mod:`repro.equiv.onthefly`) asks for
  one state's tau-reach at a time and must not pay for the rest of the
  graph — :class:`LazyReach` memoises per-state reach sets on demand.
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, Iterable, Sequence, TypeVar

from ..engine.budget import Meter

T = TypeVar("T", bound=Hashable)


class LazyReach(Generic[T]):
    """Demand-driven memoised reflexive-transitive closure.

    ``reach(s)`` returns every state reachable from *s* (including *s*)
    over the given successor function.  Results are cached per start
    state, and the BFS absorbs already-cached reach sets wholesale, so a
    query never re-traverses a region another query has finished.

    When a :class:`~repro.engine.budget.Meter` is given, each state
    charges the pool **once per instance** the first time any query
    visits it — the demand-driven analogue of "one charge per interned
    state".  Instances must therefore be scoped to a single checker run
    (one meter): a cross-run cache would make budget verdicts depend on
    history.
    """

    __slots__ = ("_successors", "_meter", "_memo", "_charged")

    def __init__(self, successors: Callable[[T], Iterable[T]],
                 meter: Meter | None = None):
        self._successors = successors
        self._meter = meter
        self._memo: dict[T, frozenset[T]] = {}
        self._charged: set[T] = set()

    def _charge(self, state: T) -> None:
        if self._meter is not None and state not in self._charged:
            self._charged.add(state)
            self._meter.charge()

    def reach(self, start: T) -> frozenset[T]:
        """All states reachable from *start* (reflexive-transitive)."""
        cached = self._memo.get(start)
        if cached is not None:
            return cached
        self._charge(start)
        seen: set[T] = {start}
        stack: list[T] = [start]
        while stack:
            s = stack.pop()
            for t in self._successors(s):
                if t in seen:
                    continue
                done = self._memo.get(t)
                if done is not None:
                    # Absorb the finished region without re-walking it.
                    for u in done - seen:
                        self._charge(u)
                    seen |= done
                    continue
                self._charge(t)
                seen.add(t)
                stack.append(t)
        result = frozenset(seen)
        self._memo[start] = result
        return result


def reachability_closure(successors: Sequence[frozenset[int]]) -> list[frozenset[int]]:
    """Reflexive-transitive closure of a whole successor relation.

    The eager form the global checkers need: every state's reach set at
    once, computed by one shared :class:`LazyReach` so later starts reuse
    the regions earlier starts finished.  Starts are taken in reverse
    index order — BFS exploration appends successors after their
    predecessors, so high indices tend to be deep states whose closures
    the shallow states then absorb.
    """
    lazy: LazyReach[int] = LazyReach(lambda s: successors[s])
    n = len(successors)
    closed: list[frozenset[int]] = [frozenset()] * n
    for start in range(n - 1, -1, -1):
        closed[start] = lazy.reach(start)
    return closed


def weak_keys(closure: Sequence[frozenset[int]],
              strong_keys: Sequence[frozenset]) -> list[frozenset]:
    """Weak observability keys: union of strong keys over the closure.

    E.g. weak barbs ``p |Down a  iff  exists p' in closure(p). p' |down a``.
    """
    return [frozenset().union(*(strong_keys[t] for t in closure[s]))
            for s in range(len(closure))]
