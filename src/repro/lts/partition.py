"""Relational coarsest partition (Kanellakis–Smolka style) refinement.

Used by the barbed- and step-bisimilarity checkers, whose clauses match
*unlabelled* reductions plus an observability predicate: states start
partitioned by their observability key and blocks are split until every
state in a block reaches exactly the same set of blocks.

For the weak variants the caller passes saturated successor sets (the
reflexive-transitive closure of the reduction), which turns weak
bisimilarity into strong bisimilarity on the saturated system.
"""

from __future__ import annotations

from typing import Hashable, Sequence


def coarsest_partition(successors: Sequence[frozenset[int]],
                       initial_keys: Sequence[Hashable]) -> list[int]:
    """Compute the coarsest partition refining *initial_keys* and stable
    under the successor relation.

    ``successors[i]`` is the set of states reachable from state *i* in one
    (possibly saturated) reduction.  Returns a block id per state; two
    states are bisimilar iff they get the same block id.
    """
    n = len(successors)
    if len(initial_keys) != n:
        raise ValueError("initial_keys and successors must align")
    # Initial blocks from the observability keys.
    key_ids: dict[Hashable, int] = {}
    block = [key_ids.setdefault(k, len(key_ids)) for k in initial_keys]
    while True:
        signatures: dict[tuple, int] = {}
        new_block = [0] * n
        for i in range(n):
            sig = (block[i], frozenset(block[j] for j in successors[i]))
            new_block[i] = signatures.setdefault(sig, len(signatures))
        if new_block == block:
            return block
        block = new_block


def partition_relates(successors: Sequence[frozenset[int]],
                      initial_keys: Sequence[Hashable],
                      a: int, b: int) -> bool:
    """Convenience: are states *a* and *b* in the same final block?"""
    block = coarsest_partition(successors, initial_keys)
    return block[a] == block[b]
