"""Relational coarsest partition via worklist signature refinement.

Used by the barbed- and step-bisimilarity checkers, whose clauses match
*unlabelled* reductions plus an observability predicate: states start
partitioned by their observability key and blocks are split until every
state in a block reaches exactly the same set of blocks.

For the weak variants the caller passes saturated successor sets (the
reflexive-transitive closure of the reduction), which turns weak
bisimilarity into strong bisimilarity on the saturated system.

The refinement is Paige–Tarjan-flavoured rather than a naive global
fixpoint: signatures are stored per state, a predecessor map tracks who can
see a block change, and after a split only the *predecessors of moved
states* get their signatures recomputed — so the cost per round is
proportional to the actual splits, not to re-signaturing the whole system.
:func:`coarsest_partition_labelled` runs the same engine with per-label
signatures for the LTS minimizer.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from ..engine.budget import Budget, Meter, resolve_meter
from ..obs import metrics as _metrics, progress as _progress, tracing as _tracing
from ..obs.state import STATE as _OBS


def _initial_blocks(initial_keys: Sequence[Hashable]) -> tuple[list[int], int]:
    key_ids: dict[Hashable, int] = {}
    block = [key_ids.setdefault(k, len(key_ids)) for k in initial_keys]
    return block, len(key_ids)


def _predecessors(successors: Sequence[Sequence[int]], n: int) -> list[list[int]]:
    preds: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        for j in successors[i]:
            preds[j].append(i)
    return preds


def _refine(block: list[int],
            n_blocks: int,
            preds: Sequence[Sequence[int]],
            signature: Callable[[int], Hashable],
            watch: tuple[int, int] | None = None,
            meter: Meter | None = None) -> list[int] | None:
    """Refine *block* (modified in place) to stability under *signature*.

    ``signature(s)`` must read the current ``block`` assignment.  Signatures
    are cached per state and recomputed only for states with a successor
    that changed block — the worklist.  With *watch* set, returns ``None``
    as soon as the watched pair lands in different blocks (early exit for
    :func:`partition_relates`); otherwise returns the stable assignment.

    With *meter* set, the worklist polls the meter's deadline/cancellation
    between signature recomputations (refinement interns nothing, so the
    state cap does not apply here) and raises
    :class:`~repro.engine.budget.BudgetExceeded` mid-fixpoint.
    """
    n = len(block)
    if meter is not None:
        meter.check()
    sig: list[Hashable] = [signature(s) for s in range(n)]
    members: list[set[int]] = [set() for _ in range(n_blocks)]
    for i, b in enumerate(block):
        members[b].add(i)
    # Blocks whose members' signatures may disagree; initially all of them.
    affected = {b for b in range(n_blocks) if len(members[b]) > 1}
    dirty: set[int] = set()  # states whose cached signature may be stale
    while affected or dirty:
        if _OBS.enabled:
            _metrics.inc("partition.rounds")
            _metrics.inc("partition.resignatured", len(dirty))
            _progress.report("partition.refine", blocks=len(members),
                             affected=len(affected), dirty=len(dirty))
        for s in dirty:
            if meter is not None:
                meter.tick()
            new_sig = signature(s)
            if new_sig != sig[s]:
                sig[s] = new_sig
                affected.add(block[s])
        dirty = set()
        moved: list[int] = []
        for b in sorted(affected):
            if meter is not None:
                meter.tick()
            group = members[b]
            if len(group) <= 1:
                continue
            cells: dict[Hashable, list[int]] = {}
            for s in sorted(group):
                cells.setdefault(sig[s], []).append(s)
            if len(cells) == 1:
                continue
            # The largest cell keeps the old id: fewer moved states means
            # fewer predecessors to re-signature.
            for cell in sorted(cells.values(), key=len)[:-1]:
                nb = len(members)
                members.append(set(cell))
                for s in cell:
                    block[s] = nb
                group.difference_update(cell)
                moved.extend(cell)
                if _OBS.enabled:
                    _metrics.inc("partition.splits")
            if watch is not None and block[watch[0]] != block[watch[1]]:
                return None
        affected = set()
        for s in moved:
            dirty.update(preds[s])
    return block


def _refine_meter(budget: Budget | Meter | None) -> Meter | None:
    """The meter `_refine` should poll, or None when nothing is watched.

    Refinement interns no states, so only deadline/cancellation (or an
    already-tripped shared meter) are relevant; ungoverned runs pay zero
    metering overhead.
    """
    meter = resolve_meter(budget)
    return meter if meter.watching else None


def coarsest_partition(successors: Sequence[frozenset[int]],
                       initial_keys: Sequence[Hashable], *,
                       budget: Budget | Meter | None = None) -> list[int]:
    """Compute the coarsest partition refining *initial_keys* and stable
    under the successor relation.

    ``successors[i]`` is the set of states reachable from state *i* in one
    (possibly saturated) reduction.  Returns a block id per state; two
    states are bisimilar iff they get the same block id.  A tripped
    *budget* raises :class:`~repro.engine.budget.BudgetExceeded`
    mid-fixpoint (raw-explorer contract).
    """
    n = len(successors)
    if len(initial_keys) != n:
        raise ValueError("initial_keys and successors must align")
    with _tracing.span("partition.coarsest", n_states=n) as sp:
        block, n_blocks = _initial_blocks(initial_keys)

        def signature(s: int) -> Hashable:
            return frozenset(block[t] for t in successors[s])

        result = _refine(block, n_blocks, _predecessors(successors, n),
                         signature, meter=_refine_meter(budget))
        assert result is not None
        sp.set(n_blocks=len(set(result)))
    return result


def coarsest_partition_labelled(
        per_label: Sequence[Sequence[frozenset[int]]],
        initial_keys: Sequence[Hashable], *,
        budget: Budget | Meter | None = None) -> list[int]:
    """Coarsest partition stable under a *labelled* successor relation.

    ``per_label[l][i]`` is the set of states reachable from state *i* by an
    edge with label *l*; stability requires matching successor blocks label
    by label (strong labelled bisimilarity on the explicit graph).
    """
    n = len(initial_keys)
    for succ in per_label:
        if len(succ) != n:
            raise ValueError("initial_keys and successors must align")
    with _tracing.span("partition.coarsest_labelled", n_states=n,
                       n_labels=len(per_label)) as sp:
        block, n_blocks = _initial_blocks(initial_keys)
        combined = [sorted({t for succ in per_label for t in succ[i]})
                    for i in range(n)]

        def signature(s: int) -> Hashable:
            return tuple(frozenset(block[t] for t in succ[s])
                         for succ in per_label)

        result = _refine(block, n_blocks, _predecessors(combined, n),
                         signature, meter=_refine_meter(budget))
        assert result is not None
        sp.set(n_blocks=len(set(result)))
    return result


def partition_relates(successors: Sequence[frozenset[int]],
                      initial_keys: Sequence[Hashable],
                      a: int, b: int, *,
                      budget: Budget | Meter | None = None) -> bool:
    """Are states *a* and *b* in the same final block?

    Exits as soon as refinement separates *a* from *b* instead of running
    the fixpoint to completion — refinement never merges blocks, so an
    early separation is final.
    """
    n = len(successors)
    if len(initial_keys) != n:
        raise ValueError("initial_keys and successors must align")
    with _tracing.span("partition.relates", n_states=n) as sp:
        block, n_blocks = _initial_blocks(initial_keys)
        if block[a] != block[b]:
            sp.set(verdict=False, early_exit=True)
            return False

        def signature(s: int) -> Hashable:
            return frozenset(block[t] for t in successors[s])

        result = _refine(block, n_blocks, _predecessors(successors, n),
                         signature, watch=(a, b), meter=_refine_meter(budget))
        if result is None:
            sp.set(verdict=False, early_exit=True)
            return False
        verdict = result[a] == result[b]
        sp.set(verdict=verdict, early_exit=False)
    return verdict
