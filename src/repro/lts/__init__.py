"""Finite LTS construction and partition machinery."""

from .graph import (
    DEFAULT_MAX_STATES,
    LTS,
    build_full_lts,
    build_step_lts,
    canonical_output_label,
)
from .minimize import MinimalLTS, minimal_to_dot, minimize, to_dot
from .parallel import parallel_reachable_states, parallel_step_lts
from .partition import (
    coarsest_partition,
    coarsest_partition_labelled,
    partition_relates,
)
from .weak import reachability_closure, weak_keys

__all__ = [
    "DEFAULT_MAX_STATES", "LTS", "build_full_lts", "build_step_lts",
    "canonical_output_label",
    "MinimalLTS", "minimal_to_dot", "minimize", "to_dot",
    "parallel_reachable_states", "parallel_step_lts",
    "coarsest_partition", "coarsest_partition_labelled", "partition_relates",
    "reachability_closure", "weak_keys",
]
