"""Sharded parallel frontier expansion for a *single* exploration.

``repro batch`` (PR 7) parallelises across independent verdicts; this
module parallelises *inside* one state-space search.  The design is a
level-synchronous BFS with a strict owner split:

* the **coordinator** (this process) owns the visited set, the state
  numbering and the one shared :class:`~repro.engine.budget.Meter` —
  nothing else ever dedups or charges;
* **workers** (a ``ProcessPoolExecutor``) are stateless expanders: each
  receives a disjoint batch of frontier states as
  :mod:`repro.store.codec` bytes, re-interns them, fires the broadcast
  semantics of the payload's calculus backend and ships back per-source
  edge lists — labels as :func:`action_to_wire` tuples, targets as canonical
  encoded bytes.

Soundness (the ``docs/paper_map.md`` "parallel exploration" row): the
semantics is applied per *state*, so expansion commutes with sharding —
which worker expands a state cannot change its successor set.  The
coordinator merges batch results **in dispatch order**, so states are
discovered, numbered and charged in exactly the serial BFS order:
``parallel == serial`` is graph *identity*, not mere isomorphism, and
the PR-4 budget-monotonicity property holds with ``workers > 1`` for
free.  Dedup happens on the coordinator by hash-consed identity of the
decoded canonical term (``decode`` re-interns), never by worker-local
guesswork.

Degradation ladder (two-layer contract, never a silently wrong graph):

* pool cannot be created (no ``fork``, sandboxed semaphores, ...) —
  fall back to the serial explorer on the same meter
  (``parallel.degraded`` counter, span attr ``degraded``);
* a worker dies mid-run (``BrokenProcessPool``) — the coordinator
  re-expands the lost batches inline and finishes correctly, degraded;
* a shard trips its forwarded deadline slice, or the coordinator's
  meter trips while merging — the whole exploration raises
  :class:`BudgetExceeded` with the partial graph on ``exc.partial``,
  which the verdict layer degrades to UNKNOWN.

Cancellation note: a :class:`CancelToken` cannot cross a process
boundary (pickling would copy the flag, not share it), so workers get a
*deadline slice* only; the coordinator polls token + deadline between
batch merges, bounding the reaction latency to one batch.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from ..calculi import registry as _registry
from ..calculi.backend import CalculusBackend
from ..core.canonical import canonical_state, canonical_state_collapsed
from ..core.syntax import Process
from ..engine.budget import Budget, BudgetExceeded, Meter, resolve_meter
from ..obs import metrics as _metrics, progress as _progress, tracing as _tracing
from ..obs.state import STATE as _OBS

__all__ = ["parallel_step_lts", "parallel_reachable_states", "expand_shard",
           "MIN_BATCH", "OVERSPLIT"]

#: Smallest batch worth a round-trip: below this the codec+IPC tax per
#: state outweighs the expansion work being offloaded.
MIN_BATCH = 8

#: Batches per worker and level.  Oversplitting beyond one batch per
#: worker is cheap insurance against skew: a worker that drew a cheap
#: batch "steals" a queued one instead of idling while the slowest
#: shard finishes (counted by ``parallel.steal``).
OVERSPLIT = 4

#: Exceptions that mean "this pool (or this worker) is unusable", as
#: opposed to a bug in the expansion itself.  Same set the PR-7 batch
#: service degrades on.
_POOL_ERRORS = (BrokenProcessPool, OSError, PermissionError, RuntimeError,
                ValueError)


def expand_shard(payload: tuple) -> dict:
    """Expand one batch of frontier states (pool entry point).

    ``payload`` is ``(mode, opt, deadline_slice, calculus, blobs)``
    where ``mode`` is ``"step"`` (opt = close_binders) or ``"reach"``
    (opt = collapse), ``deadline_slice`` is the seconds of wall clock
    this shard may spend (``None`` = unwatched), ``calculus`` a registry
    spec string selecting the semantics, and ``blobs`` the codec-encoded
    sources.  Returns a wire dict::

        {"targets": [unique target bytes...], "rows": [...],
         "expanded": n, "tripped": None | "deadline", "seconds": wall}

    with one row per *expanded* source — ``(action_wire, target_index)``
    pairs for ``"step"``, bare ``target_index`` for ``"reach"`` — in
    deterministic :func:`step_transitions` order.  Targets cross the
    wire deduplicated through a per-batch table (most edges of a dense
    graph point at already-seen states; hash-consing makes the worker's
    dedup an identity lookup), so both sides pay codec cost per
    *distinct* state, not per edge.  A shard that runs out of its
    deadline slice returns the prefix it finished plus
    ``tripped="deadline"``; it never raises, so a trip is data the
    coordinator turns into :class:`BudgetExceeded`, not a pool crash.

    Also the inline fallback: the coordinator calls this in-process for
    batches a dead pool lost (decoding then re-interns against the
    coordinator's own table, so the merge path is identical).
    """
    from ..store.codec import action_to_wire, decode, encode

    mode, opt, deadline_slice, calculus, blobs = payload
    backend = _registry.resolve(calculus)
    t0 = time.monotonic()
    deadline_at = None if deadline_slice is None else t0 + deadline_slice
    table: list[bytes] = []
    tindex: dict[Process, int] = {}

    def tref(t: Process) -> int:
        i = tindex.get(t)
        if i is None:
            i = len(table)
            tindex[t] = i
            table.append(encode(t))
        return i

    rows: list[list] = []
    tripped: str | None = None
    if mode == "reach":
        from ..runtime.analysis import _closed_successors
        canon = canonical_state_collapsed if opt else canonical_state
    for blob in blobs:
        if deadline_at is not None and time.monotonic() > deadline_at:
            tripped = "deadline"
            break
        src = decode(blob)
        if mode == "step":
            row: list = []
            for action, target in backend.step_transitions(src):
                if opt:
                    target = _close_binders(action, target)
                row.append((action_to_wire(action),
                            tref(canonical_state(target))))
        else:
            row = [tref(canon(target))
                   for _, target in _closed_successors(src, backend)]
        rows.append(row)
    return {"targets": table, "rows": rows, "expanded": len(rows),
            "tripped": tripped, "seconds": time.monotonic() - t0}


def _close_binders(action, target: Process) -> Process:
    from .graph import _close_binders as impl
    return impl(action, target)


def _make_pool(workers: int) -> Executor:
    """Create the worker pool (separate hook so tests can fail it)."""
    return ProcessPoolExecutor(max_workers=workers)


def _deadline_slice(meter: Meter) -> float | None:
    """Wall-clock seconds a shard dispatched *now* may spend.

    Computed against the coordinator meter's budget; the worker re-bases
    it on its own monotonic clock.  The coordinator's meter stays the
    authority — this slice only stops a shard from burning wall clock
    long after the whole exploration is due.
    """
    deadline = meter.budget.deadline
    if deadline is None:
        return None
    return max(0.0, deadline - meter.elapsed())


def _plan_batches(n: int, workers: int) -> int:
    """Number of batches for a frontier of *n* states."""
    if n <= MIN_BATCH:
        return 1
    by_size = -(-n // MIN_BATCH)          # ceil: keep batches >= MIN_BATCH
    return max(1, min(workers * OVERSPLIT, by_size))


def _split(items: list, n_batches: int) -> list[list]:
    """Contiguous near-equal chunks, preserving discovery order."""
    n = len(items)
    base, extra = divmod(n, n_batches)
    out = []
    start = 0
    for i in range(n_batches):
        size = base + (1 if i < extra else 0)
        out.append(items[start:start + size])
        start += size
    return [c for c in out if c]


class _ShardStats:
    """Coordinator-side tallies surfaced on the ``lts.parallel`` span."""

    __slots__ = ("levels", "batches", "steal", "idle", "degraded")

    def __init__(self) -> None:
        self.levels = 0
        self.batches = 0
        self.steal = 0
        self.idle = 0
        self.degraded = False

    def account_level(self, n_batches: int, workers: int) -> None:
        self.levels += 1
        self.batches += n_batches
        steal = max(0, n_batches - workers)
        idle = max(0, workers - n_batches)
        self.steal += steal
        self.idle += idle
        if _OBS.enabled:
            _metrics.inc("parallel.batches", n_batches)
            if steal:
                _metrics.inc("parallel.steal", steal)
            if idle:
                _metrics.inc("parallel.idle", idle)


def _dispatch_level(pool_ref: list[Executor | None], payloads: list[tuple],
                    stats: _ShardStats) -> list[dict]:
    """Run one level's batches, in order, degrading inline on pool death.

    Results come back positionally aligned with *payloads*; a batch whose
    future failed (or that could not be submitted because the pool broke
    earlier) is re-expanded inline by the coordinator — lost work is
    redone, never dropped.
    """
    futures: list = [None] * len(payloads)
    pool = pool_ref[0]
    for i, payload in enumerate(payloads):
        if pool is None:
            break
        try:
            futures[i] = pool.submit(expand_shard, payload)
        except _POOL_ERRORS:
            stats.degraded = True
            pool_ref[0] = pool = None
    results: list[dict | None] = [None] * len(payloads)
    for i, fut in enumerate(futures):
        if fut is None:
            continue
        try:
            results[i] = fut.result()
        except _POOL_ERRORS:
            stats.degraded = True
            pool_ref[0] = None
    for i, payload in enumerate(payloads):
        if results[i] is None:
            if _OBS.enabled:
                _metrics.inc("parallel.degraded")
            results[i] = expand_shard(payload)
    return results  # type: ignore[return-value]


def _shard_tripped(reason: str, meter: Meter) -> BudgetExceeded:
    """Turn a worker-reported trip into the coordinator's exception.

    ``meter.check()`` first: if the coordinator's own clock agrees the
    deadline passed, the meter trips itself (recording the trip for any
    shared consumers).  With an injected test clock the worker can trip
    while the meter would not — still degrade, from the worker's report.
    """
    meter.check()
    return BudgetExceeded(
        reason, f"worker shard exhausted its {reason} slice",
        stats=meter.stats())


def parallel_step_lts(p: Process, *,
                      budget: Budget | Meter | None = None,
                      close_binders: bool = True,
                      workers: int = 2,
                      calculus: str | CalculusBackend | None = None) -> tuple:
    """Sharded :func:`~repro.lts.graph.build_step_lts`; same contract.

    Returns the *identical* ``(lts, root)`` the serial explorer builds —
    same state numbering, same edge order, same charge sequence — so a
    budget trip raises :class:`BudgetExceeded` with the same partial
    graph on ``exc.partial``.  Raw-explorer layer: callers wanting
    UNKNOWN-on-trip go through :func:`repro.api.explore`.
    """
    from ..store.codec import action_from_wire, decode, encode
    from .graph import DEFAULT_BUDGET, LTS, build_step_lts

    meter = resolve_meter(budget, DEFAULT_BUDGET)
    backend = _registry.resolve(calculus)
    spec = backend.spec
    workers = max(1, int(workers))
    with _tracing.span("lts.parallel") as sp:
        sp.set(workers=workers)
        try:
            pool: Executor | None = _make_pool(workers)
        except _POOL_ERRORS:
            if _OBS.enabled:
                _metrics.inc("parallel.degraded")
            sp.set(degraded="pool-unavailable")
            return build_step_lts(p, budget=meter,
                                  close_binders=close_binders,
                                  calculus=backend)
        stats = _ShardStats()
        pool_ref: list[Executor | None] = [pool]
        lts = LTS()
        root = lts.add_state(canonical_state(p))
        try:
            meter.charge()
            frontier = [root]
            while frontier:
                n_batches = _plan_batches(len(frontier), workers)
                sid_batches = _split(frontier, n_batches)
                stats.account_level(n_batches, workers)
                slice_s = _deadline_slice(meter)
                payloads = [
                    ("step", close_binders, slice_s, spec,
                     [encode(lts.states[sid]) for sid in batch])
                    for batch in sid_batches]
                results = _dispatch_level(pool_ref, payloads, stats)
                frontier = []
                for batch, result in zip(sid_batches, results):
                    with _tracing.span("parallel.shard") as shard_sp:
                        if _OBS.enabled:
                            _metrics.observe("parallel.shard_seconds",
                                             result["seconds"])
                        targets = [decode(b) for b in result["targets"]]
                        edges = 0
                        for sid, row in zip(batch, result["rows"]):
                            if _OBS.enabled:
                                _metrics.inc("lts.states_expanded")
                            for awire, tidx in row:
                                tgt = targets[tidx]
                                known = tgt in lts.index
                                if not known:
                                    meter.charge()
                                tid = lts.add_state(tgt)
                                lts.add_edge(sid, action_from_wire(awire),
                                             tid)
                                edges += 1
                                if not known:
                                    frontier.append(tid)
                        shard_sp.set(sources=result["expanded"], edges=edges,
                                     worker_seconds=result["seconds"])
                    if result["tripped"]:
                        raise _shard_tripped(result["tripped"], meter)
                    meter.check()
                    if _OBS.enabled:
                        _progress.report(
                            "lts.parallel", states=lts.n_states,
                            edges=lts.n_edges, frontier=len(frontier))
        except BudgetExceeded as exc:
            if exc.partial is None:
                exc.partial = (lts, root)
            sp.set(budget_tripped=exc.reason)
            raise
        finally:
            if pool_ref[0] is not None:
                pool_ref[0].shutdown(wait=False, cancel_futures=True)
            elif pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        if _OBS.enabled:
            _metrics.inc("lts.edges_added", lts.n_edges)
        sp.set(n_states=lts.n_states, n_edges=lts.n_edges,
               levels=stats.levels, batches=stats.batches,
               steal=stats.steal, idle=stats.idle)
        if stats.degraded:
            sp.set(degraded="pool-broken")
    return lts, root


def parallel_reachable_states(p: Process, *,
                              budget: Budget | Meter | None = None,
                              collapse: bool = True,
                              workers: int = 2,
                              calculus: str | CalculusBackend | None = None
                              ) -> list[Process]:
    """Sharded :func:`~repro.runtime.analysis.reachable_states`.

    Same contract and — by in-order merging — the identical state list
    in the identical order; a trip raises :class:`BudgetExceeded` with
    the prefix on ``exc.partial``.
    """
    from ..runtime.analysis import DEFAULT_BUDGET, reachable_states
    from ..store.codec import decode, encode

    meter = resolve_meter(budget, DEFAULT_BUDGET)
    backend = _registry.resolve(calculus)
    spec = backend.spec
    workers = max(1, int(workers))
    with _tracing.span("reach.parallel") as sp:
        sp.set(workers=workers)
        try:
            pool: Executor | None = _make_pool(workers)
        except _POOL_ERRORS:
            if _OBS.enabled:
                _metrics.inc("parallel.degraded")
            sp.set(degraded="pool-unavailable")
            return reachable_states(p, budget=meter, collapse=collapse,
                                    calculus=backend)
        stats = _ShardStats()
        pool_ref: list[Executor | None] = [pool]
        canon = canonical_state_collapsed if collapse else canonical_state
        start = canon(p)
        order = [start]
        try:
            meter.charge()
            seen = {start}
            frontier = [start]
            while frontier:
                n_batches = _plan_batches(len(frontier), workers)
                term_batches = _split(frontier, n_batches)
                stats.account_level(n_batches, workers)
                slice_s = _deadline_slice(meter)
                payloads = [("reach", collapse, slice_s, spec,
                             [encode(s) for s in batch])
                            for batch in term_batches]
                results = _dispatch_level(pool_ref, payloads, stats)
                frontier = []
                for result in results:
                    if _OBS.enabled:
                        _metrics.observe("parallel.shard_seconds",
                                         result["seconds"])
                    targets = [decode(b) for b in result["targets"]]
                    for row in result["rows"]:
                        for tidx in row:
                            key = targets[tidx]
                            if key in seen:
                                continue
                            meter.charge()
                            seen.add(key)
                            order.append(key)
                            frontier.append(key)
                    if result["tripped"]:
                        raise _shard_tripped(result["tripped"], meter)
                    meter.check()
                    if _OBS.enabled:
                        _progress.report("reach.parallel",
                                         states=len(order),
                                         frontier=len(frontier))
        except BudgetExceeded as exc:
            if exc.partial is None:
                exc.partial = order
            sp.set(budget_tripped=exc.reason)
            raise
        finally:
            if pool_ref[0] is not None:
                pool_ref[0].shutdown(wait=False, cancel_futures=True)
            elif pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        sp.set(n_states=len(order), levels=stats.levels,
               batches=stats.batches, steal=stats.steal, idle=stats.idle)
        if stats.degraded:
            sp.set(degraded="pool-broken")
    return order
