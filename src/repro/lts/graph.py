"""Explicit finite LTS graphs built from process terms.

States are processes quotiented by :func:`repro.core.canonical.canonical_state`
(a sound approximation of structural congruence — imperfect identification
costs duplicate states, never wrong answers).  Exploration is bounded; the
paper's recursive examples are semantically finite-state only up to such
quotienting.

Two graph flavours are built on one core:

* :func:`build_step_lts` — the autonomous ``-phi->`` graph (outputs + tau,
  labels kept), enough for barbed and step bisimilarity and for
  reachability analyses of closed systems.
* :func:`build_full_lts` — adds early-input transitions instantiated over a
  :class:`~repro.core.names.NameUniverse`; used by benchmarks and the
  simulator when the environment can inject messages.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..calculi import registry as _registry
from ..calculi.backend import CalculusBackend
from ..core.actions import Action, InputAction, OutputAction, TauAction
from ..core.canonical import canonical_state
from ..core.freenames import free_names
from ..core.names import NameUniverse
from ..core.reduction import barbs
from ..core.syntax import Process, Restrict
from ..engine.budget import (
    Budget,
    BudgetExceeded,
    Meter,
    legacy_cap,
    resolve_meter,
)
from ..obs import metrics as _metrics, progress as _progress, tracing as _tracing
from ..obs.state import STATE as _OBS

DEFAULT_MAX_STATES = 20_000

#: Default budget for LTS exploration (raw-explorer layer: a trip raises
#: :class:`BudgetExceeded` with the partial ``(lts, root)`` attached).
DEFAULT_BUDGET = Budget(max_states=DEFAULT_MAX_STATES)


@dataclass
class LTS:
    """An explicit labelled transition system over canonical process states.

    ``index`` is keyed by the hash-consed canonical state: interned terms
    carry a cached hash and compare by identity, so state lookup never
    walks a term tree.
    """

    states: list[Process] = field(default_factory=list)
    index: dict[Process, int] = field(default_factory=dict)
    edges: list[list[tuple[Action, int]]] = field(default_factory=list)
    _edge_count: int = field(default=0, repr=False)

    def add_state(self, p: Process) -> int:
        """Intern canonical state *p*, returning its id."""
        sid = self.index.get(p)
        if sid is None:
            sid = len(self.states)
            self.index[p] = sid
            self.states.append(p)
            self.edges.append([])
        return sid

    def add_edge(self, src: int, action: Action, dst: int) -> None:
        self.edges[src].append((action, dst))
        self._edge_count += 1

    @property
    def n_states(self) -> int:
        return len(self.states)

    @property
    def n_edges(self) -> int:
        return self._edge_count

    def successors(self, sid: int, *, tau_only: bool = False) -> list[int]:
        """Target ids of outgoing edges (optionally tau edges only)."""
        return [dst for act, dst in self.edges[sid]
                if not tau_only or isinstance(act, TauAction)]

    def barbs_of(self, sid: int) -> frozenset[str]:
        """Strong barbs of a state (outputs available right now)."""
        return barbs(self.states[sid])

    def __repr__(self) -> str:
        return f"LTS(states={self.n_states}, edges={self.n_edges})"


def _close_binders(action: Action, target: Process) -> Process:
    """Re-bind extruded names around a bound-output target.

    For *state identity* in reachability-style analyses, the residual of a
    bound output is considered together with its extruded names still
    restricted: the environment of a closed system under analysis will have
    learnt them, but their future behaviour is fully represented by the
    re-bound form when we only track barbs and steps.
    """
    if isinstance(action, OutputAction) and action.binders:
        q = target
        for b in reversed(action.binders):
            q = Restrict(b, q)
        return q
    return target


def build_step_lts(p: Process, *,
                   budget: Budget | Meter | None = None,
                   close_binders: bool = True,
                   max_states: int | None = None,
                   workers: int = 0,
                   calculus: str | CalculusBackend | None = None
                   ) -> tuple[LTS, int]:
    """Explore the ``-phi->`` graph from *p*; returns (lts, initial id).

    Raw-explorer contract: when the budget trips this raises
    :class:`BudgetExceeded` with the partially built ``(lts, root)`` on
    ``exc.partial`` — the verdict layer (:func:`repro.api.explore`)
    degrades that into a truncated-but-usable result.

    ``workers >= 2`` shards frontier expansion across a process pool
    (see :mod:`repro.lts.parallel`); the resulting graph — including the
    partial graph on a trip — is identical to the serial one.

    ``calculus`` selects the broadcast semantics via
    :mod:`repro.calculi.registry` (default: the paper's ``"bpi"``).
    """
    budget = legacy_cap("build_step_lts", budget, max_states=max_states)
    backend = _registry.resolve(calculus)
    if workers >= 2:
        from .parallel import parallel_step_lts
        return parallel_step_lts(p, budget=budget,
                                 close_binders=close_binders,
                                 workers=workers, calculus=backend)
    meter = resolve_meter(budget, DEFAULT_BUDGET)
    with _tracing.span("lts.build_step") as sp:
        lts = LTS()
        root = lts.add_state(canonical_state(p))
        meter.charge()
        queue = deque([root])
        expanded: set[int] = set()
        try:
            while queue:
                sid = queue.popleft()
                if sid in expanded:
                    continue
                expanded.add(sid)
                if _OBS.enabled:
                    _metrics.inc("lts.states_expanded")
                    _progress.report("lts.build_step", states=lts.n_states,
                                     edges=lts.n_edges, frontier=len(queue))
                state = lts.states[sid]
                for action, target in backend.step_transitions(state):
                    if close_binders:
                        target = _close_binders(action, target)
                    tgt = canonical_state(target)
                    known = tgt in lts.index
                    if not known:
                        meter.charge()
                    tid = lts.add_state(tgt)
                    lts.add_edge(sid, action, tid)
                    if not known:
                        queue.append(tid)
        except BudgetExceeded as exc:
            if exc.partial is None:
                exc.partial = (lts, root)
            sp.set(budget_tripped=exc.reason)
            raise
        if _OBS.enabled:
            _metrics.inc("lts.edges_added", lts.n_edges)
        sp.set(n_states=lts.n_states, n_edges=lts.n_edges)
    return lts, root


def canonical_output_label(action: OutputAction) -> OutputAction:
    """Abstract the binder *names* of a bound output out of the label.

    Extruded names are arbitrary; labels become comparable across states by
    replacing each binder with an indexed placeholder (by first occurrence
    among the objects).
    """
    if not action.binders:
        return action
    order = {b: i for i, b in enumerate(action.binders)}
    placeholders = {b: f"_e{order[b]}" for b in action.binders}
    return OutputAction(action.chan,
                        tuple(placeholders.get(o, o) for o in action.objects),
                        tuple(placeholders[b] for b in action.binders))


def build_full_lts(p: Process, universe: NameUniverse | None = None, *,
                   budget: Budget | Meter | None = None,
                   n_fresh: int = 1,
                   max_states: int | None = None,
                   calculus: str | CalculusBackend | None = None
                   ) -> tuple[LTS, int]:
    """Explore outputs, taus *and* universe-instantiated inputs from *p*.

    Bound-output labels are canonicalized via
    :func:`canonical_output_label` and their targets re-bound, keeping the
    graph finite and labels comparable.  Raw-explorer contract: a budget
    trip raises :class:`BudgetExceeded` with the partial ``(lts, root)``
    attached to ``exc.partial``.
    """
    budget = legacy_cap("build_full_lts", budget, max_states=max_states)
    backend = _registry.resolve(calculus)
    meter = resolve_meter(budget, DEFAULT_BUDGET)
    if universe is None:
        universe = NameUniverse(free_names(p), n_fresh)
    with _tracing.span("lts.build_full") as sp:
        lts = LTS()
        root = lts.add_state(canonical_state(p))
        meter.charge()
        queue = deque([root])
        expanded: set[int] = set()

        def intern(target: Process, sid_from: int, action: Action) -> None:
            tgt = canonical_state(target)
            known = tgt in lts.index
            if not known:
                meter.charge()
            tid = lts.add_state(tgt)
            lts.add_edge(sid_from, action, tid)
            if not known:
                queue.append(tid)

        try:
            while queue:
                sid = queue.popleft()
                if sid in expanded:
                    continue
                expanded.add(sid)
                if _OBS.enabled:
                    _metrics.inc("lts.states_expanded")
                    _progress.report("lts.build_full", states=lts.n_states,
                                     edges=lts.n_edges, frontier=len(queue))
                state = lts.states[sid]
                for action, target in backend.step_transitions(state):
                    if isinstance(action, OutputAction) and action.binders:
                        intern(_close_binders(action, target), sid,
                               canonical_output_label(action))
                    else:
                        intern(target, sid, action)
                for chan, arity in sorted(backend.input_capabilities(state)):
                    for values in universe.vectors(arity):
                        for target in backend.input_continuations(
                                state, chan, values):
                            intern(target, sid, InputAction(chan, values))
        except BudgetExceeded as exc:
            if exc.partial is None:
                exc.partial = (lts, root)
            sp.set(budget_tripped=exc.reason)
            raise
        if _OBS.enabled:
            _metrics.inc("lts.edges_added", lts.n_edges)
        sp.set(n_states=lts.n_states, n_edges=lts.n_edges)
    return lts, root
