"""LTS minimization and DOT export.

Quotients an explicit LTS by strong bisimilarity (labels + barbs) via the
shared partition machinery, producing the canonical minimal automaton —
handy for inspecting the behaviour of paper examples and for the ablation
benchmarks (state counts before/after the structural quotients).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.actions import TauAction
from .graph import LTS
from .partition import coarsest_partition_labelled


@dataclass
class MinimalLTS:
    """The quotient automaton: blocks, labelled block edges, block barbs."""

    n_blocks: int
    initial: int
    edges: set[tuple[int, str, int]] = field(default_factory=set)
    barbs: list[frozenset[str]] = field(default_factory=list)
    block_of: list[int] = field(default_factory=list)

    @property
    def n_edges(self) -> int:
        return len(self.edges)


def minimize(lts: LTS, initial: int) -> MinimalLTS:
    """Quotient *lts* by strong (labelled) bisimilarity.

    Labels are compared by their string rendering (bound outputs should be
    pre-canonicalized by the graph builder).  The initial partition is by
    barb set; refinement splits by labelled successor-block signatures.
    """
    n = lts.n_states
    labels = sorted({str(a) for edges in lts.edges for a, _ in edges})
    # per-label successor sets
    per_label: list[list[frozenset[int]]] = []
    for lab in labels:
        per_label.append([
            frozenset(dst for a, dst in lts.edges[s] if str(a) == lab)
            for s in range(n)])

    keys = [lts.barbs_of(s) for s in range(n)]
    # joint fixpoint across all labels via the shared worklist refinement
    block = coarsest_partition_labelled(per_label, keys)

    result = MinimalLTS(n_blocks=max(block) + 1 if n else 0,
                        initial=block[initial] if n else 0,
                        block_of=block)
    result.barbs = [frozenset()] * result.n_blocks
    for s in range(n):
        result.barbs[block[s]] = keys[s]
        for action, dst in lts.edges[s]:
            result.edges.add((block[s], str(action), block[dst]))
    return result


def to_dot(lts: LTS, initial: int, *, max_label: int = 24) -> str:
    """Render an explicit LTS as Graphviz DOT (states labelled by barbs)."""
    lines = ["digraph lts {", "  rankdir=LR;",
             f"  node [shape=circle]; {initial} [shape=doublecircle];"]
    for s in range(lts.n_states):
        bb = ",".join(sorted(lts.barbs_of(s)))
        label = f"{s}" + (f"\\n{{{bb}}}" if bb else "")
        lines.append(f'  {s} [label="{label}"];')
    for s in range(lts.n_states):
        for action, dst in lts.edges[s]:
            lab = "τ" if isinstance(action, TauAction) else str(action)
            if len(lab) > max_label:
                lab = lab[: max_label - 1] + "…"
            lines.append(f'  {s} -> {dst} [label="{lab}"];')
    lines.append("}")
    return "\n".join(lines)


def minimal_to_dot(m: MinimalLTS, *, max_label: int = 24) -> str:
    """Render a minimized LTS as Graphviz DOT."""
    lines = ["digraph min_lts {", "  rankdir=LR;",
             f"  node [shape=circle]; {m.initial} [shape=doublecircle];"]
    for b in range(m.n_blocks):
        bb = ",".join(sorted(m.barbs[b]))
        label = f"B{b}" + (f"\\n{{{bb}}}" if bb else "")
        lines.append(f'  {b} [label="{label}"];')
    for src, lab, dst in sorted(m.edges):
        if len(lab) > max_label:
            lab = lab[: max_label - 1] + "…"
        lines.append(f'  {src} -> {dst} [label="{lab}"];')
    lines.append("}")
    return "\n".join(lines)
