"""Command-line interface:  python -m repro <command> ...

Commands
--------
steps "<process>"
    Print the autonomous transitions (outputs and taus) of a term.
moves "<process>" [--fresh N]
    Print the full transition set, inputs instantiated over fn + N fresh.
run "<process>" [--seed S] [--max-steps N]
    Execute a closed system under the seeded scheduler; print the trace.
eq "<p>" "<q>" [--relation barbed|step|labelled|noisy|congruence] [--weak]
   [--strategy onthefly|global]
    Decide a behavioural equivalence.  The bisimilarity relations run
    on-the-fly by default; --strategy global forces the eager oracle.
barb "<process>" <channel> [--max-states N]
    Bounded search: can the system reach a broadcast on the channel?
canon "<process>"
    Print the canonical state form.
lint "<process>" [--select CODES] [--ignore CODES] [--format text|json]
    Static analysis (BP diagnostics); `--corpus` lints every apps/examples
    term instead.  Exit 0 clean, 1 findings, 2 parse failure.
flow "<process>" [--closed] [--barb CHAN] [--format text|json] [--store P]
    The channel-capability flow analysis: per-channel may-broadcast /
    may-listen / may-extrude / may-carry sets.  With --barb CHAN the
    static pre-solver answers the reachability question: exit 0 when a
    barb on CHAN may be reachable, 1 when it is proven inert (no
    exploration), 2 on a parse failure.  `--corpus` summarises every
    apps/examples term; --store caches summaries in the verdict store.
batch FILE [--store PATH] [--workers N] [--format text|json]
    Answer many check requests (JSON-lines; `-` reads stdin), deduped
    against each other and the store, misses fanned out over a process
    pool.  Exit 0 all definite, 2 some UNKNOWN or malformed input.
serve [--store PATH]
    Long-lived line service: one JSON-lines request in, one JSON verdict
    line out (flushed), until stdin closes.  Always exits 0 once stdin
    is drained — malformed requests and UNKNOWN verdicts are reported
    in-band as JSON lines (an ``{"error": ...}`` line per bad request),
    never via the exit status, so a supervisor restarting on non-zero
    exits does not bounce the service over one bad client line.  This
    is deliberately different from `batch`, which exits 2 on any
    UNKNOWN or malformed input.
graph "<process>" [--minimize] [--workers N]
    Print the step LTS as Graphviz DOT.  --workers >= 2 shards frontier
    expansion across a process pool (docs/parallelism.md); exit 2 with
    a truncated graph when the budget trips.

The decision paths (`eq`, `batch`, `serve`, `repro.api.check`) accept
--store PATH: a persistent content-addressed verdict cache (sqlite).
Cached definite verdicts answer any request with an equal-or-larger
budget; cached UNKNOWNs only short-circuit equal-or-smaller budgets
(see docs/service.md).

Budget (before or after the subcommand):
--max-states N  cap the number of explored states/pairs
--timeout S     wall-clock deadline in seconds

Exit status of the decision commands (eq, barb): 0 = definite yes
(equivalent / reachable), 1 = definite no, 2 = UNKNOWN — the budget
tripped before the bounded search completed.

Observability (before or after the subcommand; see docs/observability.md):
--trace PATH    record tracing spans, write chrome://tracing JSON to PATH
--metrics       print engine counters and the span tree to stderr at exit
--progress      rate-limited progress heartbeats on stderr during long runs

Process syntax: see `repro.core.parser` (e.g. "a<v> | a(x).x!").
"""

from __future__ import annotations

import argparse
import sys

from .core.canonical import canonical_state
from .core.freenames import free_names
from .core.names import NameUniverse
from .core.parser import ParseError, parse
from .core.pretty import pretty
from .calculi import registry as _registry
from .core.reduction import can_reach_barb
from .engine.budget import Budget, BudgetExceeded
from .runtime.simulator import run as sim_run

#: Exit status when a decision command's budget tripped (UNKNOWN).
EXIT_UNKNOWN = 2


def _budget_from(args: argparse.Namespace,
                 default_states: int | None = None) -> Budget:
    """The budget the command should run under, from the CLI flags."""
    max_states = getattr(args, "max_states", None)
    timeout = getattr(args, "timeout", None)
    if max_states is None:
        max_states = default_states
    return Budget(max_states=max_states, deadline=timeout)


def _cmd_steps(args: argparse.Namespace) -> int:
    p = parse(args.process)
    backend = _registry.resolve(args.calculus)
    moves = backend.step_transitions(p)
    if not moves:
        print("(quiescent)")
    for action, target in moves:
        print(f"--{action}-->  {pretty(target)}")
    return 0


def _cmd_moves(args: argparse.Namespace) -> int:
    p = parse(args.process)
    backend = _registry.resolve(args.calculus)
    universe = NameUniverse(free_names(p), args.fresh)
    for action, target in backend.transitions(p, universe):
        print(f"--{action}-->  {pretty(target)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    p = parse(args.process)
    trace = sim_run(p, seed=args.seed, max_steps=args.max_steps,
                    calculus=args.calculus)
    print(trace)
    print("final:", pretty(trace.final))
    return 0


def _cmd_eq(args: argparse.Namespace) -> int:
    from .api import check

    from .equiv.onthefly import PartialProduct

    budget = _budget_from(args)
    verdict = check(parse(args.p), parse(args.q), relation=args.relation,
                    weak=args.weak, budget=budget, strategy=args.strategy,
                    store=args.store, calculus=args.calculus)
    kind = ("weak " if args.weak else "strong ") + args.relation
    cached = " [store]" if verdict.stats.get("store") == "hit" else ""
    if verdict.is_unknown:
        detail = (f" {verdict.evidence.summary()}"
                  if isinstance(verdict.evidence, PartialProduct) else "")
        print(f"{kind}: UNKNOWN ({verdict.reason}){detail}{cached}")
        return EXIT_UNKNOWN
    word = "EQUIVALENT" if verdict.is_true else "DIFFERENT"
    print(f"{kind}: {word}{cached}")
    return 0 if verdict.is_true else 1


def _cmd_barb(args: argparse.Namespace) -> int:
    p = parse(args.process)
    budget = _budget_from(args, default_states=50_000)
    verdict = can_reach_barb(p, args.channel, budget=budget,
                             collapse_duplicates=True,
                             calculus=args.calculus,
                             presolve=not args.no_presolve)
    if verdict.stats.get("presolve") == "flow":
        scope = " (flow pre-solver, 0 states explored)"
    else:
        scope = ("" if budget.max_states is None
                 else f" (within {budget.max_states} states)")
    if verdict.is_unknown:
        print(f"{args.channel}: UNKNOWN ({verdict.reason}){scope}")
        return EXIT_UNKNOWN
    word = "reachable" if verdict.is_true else "not reachable"
    print(f"{args.channel}: {word}{scope}")
    return 0 if verdict.is_true else 1


def _cmd_canon(args: argparse.Namespace) -> int:
    print(pretty(canonical_state(parse(args.process))))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .lint.engine import run_lint

    if args.corpus:
        if args.process is not None:
            print("lint: --corpus takes no process argument", file=sys.stderr)
            return 2
        from .lint.corpus import corpus
        reports = [(name, run_lint(term, select=args.select,
                                   ignore=args.ignore,
                                   calculus=args.calculus))
                   for name, term in corpus()]
        dirty = sum(not r.ok for _, r in reports)
        if args.format == "json":
            print(json.dumps({name: r.to_json() for name, r in reports},
                             indent=2))
        else:
            for name, report in reports:
                print(f"{name}: {report.summary()}")
                if not report.ok:
                    for d in report.diagnostics:
                        print(f"  {d.format()}")
            print(f"corpus: {len(reports) - dirty}/{len(reports)} clean")
        return 0 if dirty == 0 else 1
    if args.process is None:
        print("lint: need a process term (or --corpus)", file=sys.stderr)
        return 2
    from .api import lint as api_lint
    report = api_lint(args.process, select=args.select, ignore=args.ignore,
                      calculus=args.calculus)
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.format_text())
    return 0 if report.ok else 1


def _cmd_flow(args: argparse.Namespace) -> int:
    import json

    from .flow.analysis import describe, flow_analysis
    from .flow.presolve import flow_refutes_barb

    mode = "closed" if args.closed else "open"
    if args.corpus:
        if args.process is not None:
            print("flow: --corpus takes no process argument",
                  file=sys.stderr)
            return EXIT_UNKNOWN
        from .lint.corpus import corpus
        rows = [(name, flow_analysis(term, calculus=args.calculus,
                                     mode=mode))
                for name, term in corpus()]
        if args.format == "json":
            print(json.dumps({name: a.to_json() for name, a in rows},
                             indent=2))
        else:
            for name, a in rows:
                chans = a.channels()
                speak = sum(1 for c in chans.values() if c.may_broadcast)
                flag = " (incomplete)" if a.incomplete else ""
                print(f"{name}: {len(chans)} free channels, "
                      f"{speak} may-broadcast{flag}")
        return 0
    if args.process is None:
        print("flow: need a process term (or --corpus)", file=sys.stderr)
        return EXIT_UNKNOWN
    p = parse(args.process)
    if args.barb is not None:
        evidence = flow_refutes_barb(p, args.barb, calculus=args.calculus)
        if args.format == "json":
            payload = {"channel": args.barb,
                       "refuted": evidence is not None}
            if evidence is not None:
                payload["evidence"] = evidence.to_json()
            print(json.dumps(payload, indent=2))
        elif evidence is None:
            print(f"{args.barb}: may be reachable "
                  f"(the abstraction cannot refute it)")
        else:
            print(f"{args.barb}: proven inert — no reachable state may "
                  f"broadcast on it (0 states explored; may-broadcast = "
                  f"{{{', '.join(evidence.may_broadcast)}}})")
        return 1 if evidence is not None else 0
    analysis = flow_analysis(p, calculus=args.calculus, mode=mode)
    if args.store:
        from .store.db import VerdictStore
        with VerdictStore(args.store) as store:
            summary, source = store.flow_summary(
                p, calculus=args.calculus, mode=mode)
        print(f"[store] flow summary {source} "
              f"({summary['digest'][:12]}...)", file=sys.stderr)
    if args.format == "json":
        print(json.dumps(analysis.to_json(), indent=2))
    else:
        for line in describe(analysis):
            print(line)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from .store import VerdictStore, parse_requests, run_batch
    from .store.batch import RequestError

    if args.requests == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            with open(args.requests, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError as exc:
            print(f"batch: cannot read {args.requests}: {exc}",
                  file=sys.stderr)
            return EXIT_UNKNOWN
    try:
        requests = parse_requests(lines)
    except RequestError as exc:
        print(f"batch: {exc}", file=sys.stderr)
        return EXIT_UNKNOWN
    store = VerdictStore(args.store) if args.store else None
    try:
        outcome = run_batch(requests, store=store, workers=args.workers)
    finally:
        if store is not None:
            store.close()
    if args.format == "json":
        payload = {
            "results": [
                {"id": r.request.id, "truth": r.verdict.truth.value,
                 "reason": r.verdict.reason, "source": r.source}
                for r in outcome.results],
            "summary": {
                "requests": len(outcome.results),
                "store_hits": outcome.store_hits,
                "computed": outcome.computed,
                "deduped": outcome.deduped,
                "workers": outcome.workers,
                "degraded": outcome.degraded,
                "seconds": round(outcome.seconds, 6)},
            "store": outcome.store_stats,
        }
        print(json.dumps(payload, indent=2))
    else:
        for r in outcome.results:
            print(f"{r.request.id or '-'}\t{r.verdict.truth.value}"
                  f"\t{r.source}")
        print(outcome.summary(), file=sys.stderr)
    return 0 if outcome.all_definite else EXIT_UNKNOWN


def _cmd_serve(args: argparse.Namespace) -> int:
    from .store import VerdictStore
    from .store.batch import serve as store_serve

    store = VerdictStore(args.store) if args.store else None
    try:
        served = store_serve(sys.stdin, sys.stdout, store=store)
    finally:
        if store is not None:
            store.close()
    print(f"serve: answered {served} requests", file=sys.stderr)
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from .lts.graph import build_step_lts
    from .lts.minimize import minimal_to_dot, minimize, to_dot

    truncated = None
    try:
        lts, root = build_step_lts(parse(args.process),
                                   budget=_budget_from(args,
                                                       default_states=2_000),
                                   workers=args.workers,
                                   calculus=args.calculus)
    except BudgetExceeded as exc:
        lts, root = exc.partial
        truncated = exc.reason
    if args.minimize:
        print(minimal_to_dot(minimize(lts, root)))
    else:
        print(to_dot(lts, root))
    if truncated is not None:
        print(f"[budget] graph truncated ({truncated}) at {lts.n_states} "
              f"states", file=sys.stderr)
        return EXIT_UNKNOWN
    return 0


def _add_obs_args(parser: argparse.ArgumentParser, *,
                  suppress: bool = False) -> None:
    """The observability flags, accepted before *and* after the subcommand.

    On subparsers the defaults are ``SUPPRESS`` so an omitted flag does not
    overwrite a value already parsed at the top level.
    """
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace", metavar="PATH",
        default=argparse.SUPPRESS if suppress else None,
        help="record tracing spans; write chrome://tracing JSON to PATH")
    group.add_argument(
        "--metrics", action="store_true",
        default=argparse.SUPPRESS if suppress else False,
        help="print engine counters and the span tree to stderr at exit")
    group.add_argument(
        "--progress", action="store_true",
        default=argparse.SUPPRESS if suppress else False,
        help="rate-limited progress heartbeats on stderr")


def _add_calculus_arg(parser: argparse.ArgumentParser) -> None:
    """The semantic-backend selector (steps/moves/run/eq/barb/graph/lint)."""
    parser.add_argument(
        "--calculus", metavar="SPEC", default=None,
        help="broadcast semantics: 'bpi' (default), 'lossy', or "
             "'wireless:a-b,b-c' (connectivity graph over cell names)")


def _add_budget_args(parser: argparse.ArgumentParser, *,
                     suppress: bool = False) -> None:
    """The resource-budget flags, accepted before *and* after the
    subcommand (same SUPPRESS discipline as the observability group)."""
    group = parser.add_argument_group(
        "budget",
        "resource caps for the bounded searches; when a decision command "
        "(eq, barb) trips its budget it prints UNKNOWN and exits with "
        f"status {EXIT_UNKNOWN}")
    group.add_argument(
        "--max-states", type=int, metavar="N",
        default=argparse.SUPPRESS if suppress else None,
        help="cap the number of explored states/pairs")
    group.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        default=argparse.SUPPRESS if suppress else None,
        help="wall-clock deadline for the whole command")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="bpi-calculus tools (Ene & Muntean 2001)",
        epilog=f"decision commands (eq, barb) exit 0 for a definite yes, "
               f"1 for a definite no and {EXIT_UNKNOWN} when the budget "
               f"tripped (UNKNOWN); batch exits 0 when every verdict is "
               f"definite and {EXIT_UNKNOWN} otherwise; serve always "
               f"exits 0 once stdin is drained (per-request errors are "
               f"reported in-band, see 'serve --help')")
    from . import __version__
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    _add_obs_args(parser)
    _add_budget_args(parser)
    obs_parent = argparse.ArgumentParser(add_help=False)
    _add_obs_args(obs_parent, suppress=True)
    _add_budget_args(obs_parent, suppress=True)
    sub = parser.add_subparsers(dest="command", required=True)

    s = sub.add_parser("steps", help="autonomous transitions",
                       parents=[obs_parent])
    s.add_argument("process")
    _add_calculus_arg(s)
    s.set_defaults(func=_cmd_steps)

    s = sub.add_parser("moves", help="all transitions incl. inputs",
                       parents=[obs_parent])
    s.add_argument("process")
    s.add_argument("--fresh", type=int, default=1)
    _add_calculus_arg(s)
    s.set_defaults(func=_cmd_moves)

    s = sub.add_parser("run", help="seeded execution", parents=[obs_parent])
    s.add_argument("process")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--max-steps", type=int, default=200)
    _add_calculus_arg(s)
    s.set_defaults(func=_cmd_run)

    s = sub.add_parser("eq", help="decide an equivalence (exit 0/1/2)",
                       parents=[obs_parent])
    s.add_argument("p")
    s.add_argument("q")
    s.add_argument("--relation", default="labelled",
                   choices=["barbed", "step", "labelled", "noisy",
                            "congruence", "similar"])
    s.add_argument("--weak", action="store_true")
    s.add_argument("--strategy", default=None,
                   choices=["onthefly", "global"],
                   help="checker core for barbed/step/labelled "
                        "(default: onthefly)")
    s.add_argument("--store", metavar="PATH", default=None,
                   help="persistent verdict cache (sqlite); serves cached "
                        "verdicts under the budget-aware reuse rule")
    _add_calculus_arg(s)
    s.set_defaults(func=_cmd_eq)

    s = sub.add_parser("barb", help="barb reachability (exit 0/1/2)",
                       parents=[obs_parent])
    s.add_argument("process")
    s.add_argument("channel")
    s.add_argument("--no-presolve", action="store_true",
                   help="skip the flow pre-solver; always explore")
    _add_calculus_arg(s)
    s.set_defaults(func=_cmd_barb)

    s = sub.add_parser("canon", help="canonical state form",
                       parents=[obs_parent])
    s.add_argument("process")
    s.set_defaults(func=_cmd_canon)

    s = sub.add_parser("graph", help="step-LTS as Graphviz DOT",
                       parents=[obs_parent])
    s.add_argument("process")
    s.add_argument("--minimize", action="store_true")
    s.add_argument("--workers", type=int, default=0, metavar="N",
                   help="shard frontier expansion across N worker "
                        "processes (0/1 = serial; the graph is identical "
                        "either way)")
    _add_calculus_arg(s)
    s.set_defaults(func=_cmd_graph)

    s = sub.add_parser(
        "batch", help="answer many check requests (JSON-lines) through "
                      "the verdict store",
        parents=[obs_parent])
    s.add_argument("requests", metavar="FILE",
                   help="JSON-lines request file, or '-' for stdin")
    s.add_argument("--store", metavar="PATH", default=None,
                   help="persistent verdict cache (sqlite)")
    s.add_argument("--workers", type=int, default=0, metavar="N",
                   help="process-pool size for misses (0 = inline)")
    s.add_argument("--format", default="text", choices=["text", "json"])
    s.set_defaults(func=_cmd_batch)

    s = sub.add_parser(
        "serve", help="line service: JSON-lines requests on stdin, one "
                      "JSON verdict per line on stdout",
        description="Long-lived line service: one JSON-lines request in, "
                    "one JSON verdict line out (flushed) until stdin "
                    "closes.",
        epilog="exit status: always 0 once stdin is drained — malformed "
               "requests and UNKNOWN verdicts are reported in-band as "
               "JSON lines, never via the exit status (unlike batch, "
               f"which exits {EXIT_UNKNOWN})",
        parents=[obs_parent])
    s.add_argument("--store", metavar="PATH", default=None,
                   help="persistent verdict cache (sqlite)")
    s.set_defaults(func=_cmd_serve)

    s = sub.add_parser(
        "lint", help="static analysis (exit 0 clean / 1 findings / 2 "
                     "parse error)",
        parents=[obs_parent])
    s.add_argument("process", nargs="?",
                   help="term to analyse (omit with --corpus)")
    s.add_argument("--corpus", action="store_true",
                   help="lint every apps/examples corpus term instead")
    s.add_argument("--select", metavar="CODES",
                   help="only run these code prefixes (e.g. BP1,BP201)")
    s.add_argument("--ignore", metavar="CODES",
                   help="skip these code prefixes")
    s.add_argument("--format", default="text", choices=["text", "json"])
    _add_calculus_arg(s)
    s.set_defaults(func=_cmd_lint)

    s = sub.add_parser(
        "flow", help="channel-capability flow analysis (exit 0/1/2)",
        description="Per-channel may-broadcast / may-listen / may-extrude "
                    "/ may-carry capability sets from the 0-CFA-style "
                    "abstraction; with --barb CHAN, the static pre-solver "
                    "verdict on that channel.",
        epilog="exit status: 0 = analysis printed (or the barb may be "
               "reachable), 1 = --barb channel proven inert, "
               f"{EXIT_UNKNOWN} = parse failure",
        parents=[obs_parent])
    s.add_argument("process", nargs="?",
                   help="term to analyse (omit with --corpus)")
    s.add_argument("--corpus", action="store_true",
                   help="summarise every apps/examples corpus term instead")
    s.add_argument("--closed", action="store_true",
                   help="closed-system reading (no environment); the "
                        "pre-solver's mode")
    s.add_argument("--barb", metavar="CHAN", default=None,
                   help="ask the pre-solver about a barb on CHAN "
                        "(exit 1 = proven inert)")
    s.add_argument("--store", metavar="PATH", default=None,
                   help="cache the flow summary in the verdict store")
    s.add_argument("--format", default="text", choices=["text", "json"])
    _add_calculus_arg(s)
    s.set_defaults(func=_cmd_flow)

    args = parser.parse_args(argv)

    def dispatch() -> int:
        # Each command builds one explicit Budget from the flags and runs
        # exactly one governed check against it, so the flags bound the
        # whole command; an ambient govern() here would be shadowed by
        # those explicit budgets (explicit beats ambient) and only start
        # a second, unconsulted deadline clock.
        try:
            return args.func(args)
        except ParseError as exc:
            print(f"parse error: {exc}", file=sys.stderr)
            excerpt = exc.source_context()
            if excerpt:
                print("\n".join("  " + ln for ln in excerpt.splitlines()),
                      file=sys.stderr)
            return EXIT_UNKNOWN
        except ValueError as exc:
            if "backend" not in str(exc) and "calculus" not in str(exc):
                raise
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_UNKNOWN

    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    want_progress = getattr(args, "progress", False)
    if not (trace_path or want_metrics or want_progress):
        return dispatch()

    from . import obs
    obs.reset()  # one CLI invocation == one trace
    obs.enable(progress=want_progress)
    try:
        return dispatch()
    finally:
        obs.disable()
        if trace_path:
            obs.export_chrome(trace_path)
            print(f"[obs] trace written to {trace_path}", file=sys.stderr)
        if want_metrics:
            print(obs.summary_tree(), file=sys.stderr)
            print(obs.format_metrics(), file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
