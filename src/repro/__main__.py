"""Command-line interface:  python -m repro <command> ...

Commands
--------
steps "<process>"
    Print the autonomous transitions (outputs and taus) of a term.
moves "<process>" [--fresh N]
    Print the full transition set, inputs instantiated over fn + N fresh.
run "<process>" [--seed S] [--max-steps N]
    Execute a closed system under the seeded scheduler; print the trace.
eq "<p>" "<q>" [--relation barbed|step|labelled|noisy|congruence] [--weak]
    Decide a behavioural equivalence.
barb "<process>" <channel> [--max-states N]
    Bounded search: can the system reach a broadcast on the channel?
canon "<process>"
    Print the canonical state form.

Observability (before or after the subcommand; see docs/observability.md):
--trace PATH    record tracing spans, write chrome://tracing JSON to PATH
--metrics       print engine counters and the span tree to stderr at exit
--progress      rate-limited progress heartbeats on stderr during long runs

Process syntax: see `repro.core.parser` (e.g. "a<v> | a(x).x!").
"""

from __future__ import annotations

import argparse
import sys

from .core.canonical import canonical_state
from .core.freenames import free_names
from .core.names import NameUniverse
from .core.parser import parse
from .core.pretty import pretty
from .core.reduction import can_reach_barb
from .core.semantics import step_transitions, transitions
from .runtime.simulator import run as sim_run


def _cmd_steps(args: argparse.Namespace) -> int:
    p = parse(args.process)
    moves = step_transitions(p)
    if not moves:
        print("(quiescent)")
    for action, target in moves:
        print(f"--{action}-->  {pretty(target)}")
    return 0


def _cmd_moves(args: argparse.Namespace) -> int:
    p = parse(args.process)
    universe = NameUniverse(free_names(p), args.fresh)
    for action, target in transitions(p, universe):
        print(f"--{action}-->  {pretty(target)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    p = parse(args.process)
    trace = sim_run(p, seed=args.seed, max_steps=args.max_steps)
    print(trace)
    print("final:", pretty(trace.final))
    return 0


def _cmd_eq(args: argparse.Namespace) -> int:
    from .equiv.barbed import barbed_bisimilar
    from .equiv.congruence import congruent
    from .equiv.labelled import labelled_bisimilar
    from .equiv.noisy import noisy_similar
    from .equiv.step import step_bisimilar

    p, q = parse(args.p), parse(args.q)
    deciders = {
        "barbed": lambda: barbed_bisimilar(p, q, weak=args.weak),
        "step": lambda: step_bisimilar(p, q, weak=args.weak),
        "labelled": lambda: labelled_bisimilar(p, q, weak=args.weak),
        "noisy": lambda: noisy_similar(p, q, weak=args.weak),
        "congruence": lambda: congruent(p, q, weak=args.weak),
    }
    verdict = deciders[args.relation]()
    kind = ("weak " if args.weak else "strong ") + args.relation
    print(f"{kind}: {'EQUIVALENT' if verdict else 'DIFFERENT'}")
    return 0 if verdict else 1


def _cmd_barb(args: argparse.Namespace) -> int:
    p = parse(args.process)
    got = can_reach_barb(p, args.channel, max_states=args.max_states,
                         collapse_duplicates=True)
    print(f"{args.channel}: {'reachable' if got else 'not reachable'}"
          f" (within {args.max_states} states)")
    return 0 if got else 1


def _cmd_canon(args: argparse.Namespace) -> int:
    print(pretty(canonical_state(parse(args.process))))
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from .lts.graph import build_step_lts
    from .lts.minimize import minimal_to_dot, minimize, to_dot

    lts, root = build_step_lts(parse(args.process),
                               max_states=args.max_states)
    if args.minimize:
        print(minimal_to_dot(minimize(lts, root)))
    else:
        print(to_dot(lts, root))
    return 0


def _add_obs_args(parser: argparse.ArgumentParser, *,
                  suppress: bool = False) -> None:
    """The observability flags, accepted before *and* after the subcommand.

    On subparsers the defaults are ``SUPPRESS`` so an omitted flag does not
    overwrite a value already parsed at the top level.
    """
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace", metavar="PATH",
        default=argparse.SUPPRESS if suppress else None,
        help="record tracing spans; write chrome://tracing JSON to PATH")
    group.add_argument(
        "--metrics", action="store_true",
        default=argparse.SUPPRESS if suppress else False,
        help="print engine counters and the span tree to stderr at exit")
    group.add_argument(
        "--progress", action="store_true",
        default=argparse.SUPPRESS if suppress else False,
        help="rate-limited progress heartbeats on stderr")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="bpi-calculus tools (Ene & Muntean 2001)")
    _add_obs_args(parser)
    obs_parent = argparse.ArgumentParser(add_help=False)
    _add_obs_args(obs_parent, suppress=True)
    sub = parser.add_subparsers(dest="command", required=True)

    s = sub.add_parser("steps", help="autonomous transitions",
                       parents=[obs_parent])
    s.add_argument("process")
    s.set_defaults(func=_cmd_steps)

    s = sub.add_parser("moves", help="all transitions incl. inputs",
                       parents=[obs_parent])
    s.add_argument("process")
    s.add_argument("--fresh", type=int, default=1)
    s.set_defaults(func=_cmd_moves)

    s = sub.add_parser("run", help="seeded execution", parents=[obs_parent])
    s.add_argument("process")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--max-steps", type=int, default=200)
    s.set_defaults(func=_cmd_run)

    s = sub.add_parser("eq", help="decide an equivalence",
                       parents=[obs_parent])
    s.add_argument("p")
    s.add_argument("q")
    s.add_argument("--relation", default="labelled",
                   choices=["barbed", "step", "labelled", "noisy",
                            "congruence"])
    s.add_argument("--weak", action="store_true")
    s.set_defaults(func=_cmd_eq)

    s = sub.add_parser("barb", help="barb reachability", parents=[obs_parent])
    s.add_argument("process")
    s.add_argument("channel")
    s.add_argument("--max-states", type=int, default=50_000)
    s.set_defaults(func=_cmd_barb)

    s = sub.add_parser("canon", help="canonical state form",
                       parents=[obs_parent])
    s.add_argument("process")
    s.set_defaults(func=_cmd_canon)

    s = sub.add_parser("graph", help="step-LTS as Graphviz DOT",
                       parents=[obs_parent])
    s.add_argument("process")
    s.add_argument("--minimize", action="store_true")
    s.add_argument("--max-states", type=int, default=2_000)
    s.set_defaults(func=_cmd_graph)

    args = parser.parse_args(argv)

    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    want_progress = getattr(args, "progress", False)
    if not (trace_path or want_metrics or want_progress):
        return args.func(args)

    from . import obs
    obs.reset()  # one CLI invocation == one trace
    obs.enable(progress=want_progress)
    try:
        return args.func(args)
    finally:
        obs.disable()
        if trace_path:
            obs.export_chrome(trace_path)
            print(f"[obs] trace written to {trace_path}", file=sys.stderr)
        if want_metrics:
            print(obs.summary_tree(), file=sys.stderr)
            print(obs.format_metrics(), file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
