"""The stable high-level facade of the repro package.

Four verbs cover the common workflows, re-exported from ``repro`` itself::

    import repro

    p = repro.parse("a<v> | a(x).x!")
    v = repro.check("tau.a!", "a!", relation="barbed", weak=True)
    if v.is_true: ...                      # three-valued Verdict

    ex = repro.explore(p, budget=repro.Budget(max_states=500))
    ex.n_states, ex.complete               # graceful on budget trips

    repro.decide_axioms("a! + a!", "a!")   # exact, Section 5 procedure

Everything takes either a :class:`~repro.core.syntax.Process` or a source
string (parsed with the bpi-calculus grammar), and all options are
keyword-only.  Budgets are :class:`~repro.engine.budget.Budget` (or a
shared :class:`~repro.engine.budget.Meter`); inside ``with
repro.govern(budget):`` every call without an explicit ``budget=`` draws
from one ambient pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from typing import TYPE_CHECKING

from .core.parser import parse as _parse
from .core.syntax import Process
from .engine.budget import (
    Budget,
    BudgetExceeded,
    Meter,
    resolve_meter,
)
from .engine.verdict import Verdict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (lint uses obs)
    from .lint.diagnostics import LintReport

__all__ = ["parse", "check", "explore", "decide_axioms", "reach", "lint",
           "Exploration", "RELATIONS", "STRATEGY_RELATIONS"]


def parse(source: str) -> Process:
    """Parse bpi-calculus source into a :class:`Process` term."""
    return _parse(source)


def _as_process(p: "Process | str") -> Process:
    return _parse(p) if isinstance(p, str) else p


def _relations() -> dict[str, Callable[..., Verdict]]:
    from .equiv.barbed import barbed_bisimilar
    from .equiv.congruence import congruent
    from .equiv.labelled import labelled_bisimilar
    from .equiv.noisy import strict_bisimilar
    from .equiv.simulation import similar
    from .equiv.step import step_bisimilar
    return {
        "barbed": barbed_bisimilar,
        "step": step_bisimilar,
        "labelled": labelled_bisimilar,
        "noisy": strict_bisimilar,
        "congruence": congruent,
        "similar": similar,
    }


#: Relation names accepted by :func:`check` (and the CLI's ``eq``).
RELATIONS = ("barbed", "step", "labelled", "noisy", "congruence", "similar")


#: Relations whose checkers accept a ``strategy=`` knob.
STRATEGY_RELATIONS = ("barbed", "step", "labelled")


def check(p: "Process | str", q: "Process | str", *,
          relation: str = "labelled", weak: bool = False,
          budget: "Budget | Meter | None" = None,
          strategy: "str | None" = None,
          store: "Any | None" = None,
          calculus: "str | None" = None) -> Verdict:
    """Are *p* and *q* behaviourally equivalent?

    *relation* picks the checker — ``"barbed"``, ``"step"``,
    ``"labelled"`` (the default; all three coincide, Theorem 3),
    ``"noisy"`` (Definition 11), ``"congruence"`` (Definition 12, closes
    under substitutions) or ``"similar"`` (mutual simulation).  Returns a
    three-valued :class:`~repro.engine.verdict.Verdict`; ``UNKNOWN``
    means the *budget* tripped before the search completed.

    For the bisimilarity relations, *strategy* selects the checker core:
    ``"onthefly"`` (the default) decides lazily over the product graph
    with up-to closures, ``"global"`` materialises the bounded state
    space first (the test oracle).

    *calculus* selects the broadcast semantics from
    :mod:`repro.calculi.registry` — ``"bpi"`` (the paper's reliable
    broadcast, the default), ``"lossy"`` (per-listener message loss) or
    ``"wireless:a-b,b-c"`` (connectivity-graph reachability).

    *store* (a path or an open
    :class:`~repro.store.db.VerdictStore`) makes the call a thin client
    of the persistent verdict cache: the budget-aware reuse rule may
    serve the answer without searching, and a computed verdict is
    recorded for later requests.  Verdicts served from the store carry
    ``stats["store"] == "hit"``.
    """
    deciders = _relations()
    if relation not in deciders:
        raise ValueError(
            f"unknown relation {relation!r}; pick one of {RELATIONS}")
    if store is not None:
        from .store.db import VerdictStore
        if isinstance(store, VerdictStore):
            return store.check(_as_process(p), _as_process(q),
                               relation=relation, weak=weak,
                               strategy=strategy, budget=budget,
                               calculus=calculus)
        with VerdictStore(store) as opened:
            return opened.check(_as_process(p), _as_process(q),
                                relation=relation, weak=weak,
                                strategy=strategy, budget=budget,
                                calculus=calculus)
    kwargs: dict[str, Any] = {"budget": budget}
    if relation != "similar":
        kwargs["weak"] = weak
    elif weak:
        kwargs["weak"] = True
    if calculus is not None:
        kwargs["calculus"] = calculus
    if strategy is not None:
        if relation not in STRATEGY_RELATIONS:
            raise ValueError(
                f"strategy= applies to {STRATEGY_RELATIONS}, "
                f"not {relation!r}")
        kwargs["strategy"] = strategy
    return deciders[relation](_as_process(p), _as_process(q), **kwargs)


@dataclass(frozen=True)
class Exploration:
    """Result of :func:`explore`: the (possibly truncated) step LTS.

    ``complete`` is False when the budget tripped; the graph then holds
    exactly the states interned before the trip and ``reason`` says why
    (``"max-states"``, ``"deadline"``, ``"cancelled"``).
    """

    lts: Any
    root: int
    complete: bool
    reason: str | None
    stats: dict[str, Any]

    @property
    def n_states(self) -> int:
        return self.lts.n_states

    @property
    def states(self) -> list[Process]:
        return self.lts.states

    def __repr__(self) -> str:
        flag = "complete" if self.complete else f"truncated({self.reason})"
        return f"<Exploration {self.n_states} states, {flag}>"


def explore(p: "Process | str", *,
            budget: "Budget | Meter | None" = None,
            close_binders: bool = True,
            workers: int = 0,
            calculus: "str | None" = None) -> Exploration:
    """Build the autonomous-step LTS of *p*, degrading gracefully.

    Unlike the raw :func:`~repro.lts.graph.build_step_lts` this never
    raises on a budget trip — the partial graph comes back with
    ``complete=False`` so callers can inspect what was reached.

    ``workers >= 2`` shards frontier expansion across a process pool
    (:mod:`repro.lts.parallel`); the graph — complete or truncated — is
    identical to the serial one, and a dead pool degrades to serial
    expansion, never to a wrong graph.  *calculus* picks the semantic
    backend (``"bpi"``/``"lossy"``/``"wireless:..."``).
    """
    from .lts.graph import DEFAULT_BUDGET, build_step_lts
    meter = resolve_meter(budget, DEFAULT_BUDGET)
    try:
        lts, root = build_step_lts(_as_process(p), budget=meter,
                                   close_binders=close_binders,
                                   workers=workers, calculus=calculus)
    except BudgetExceeded as exc:
        lts, root = exc.partial
        return Exploration(lts=lts, root=root, complete=False,
                           reason=exc.reason, stats=dict(exc.stats))
    return Exploration(lts=lts, root=root, complete=True, reason=None,
                       stats=meter.stats())


def decide_axioms(p: "Process | str", q: "Process | str", *,
                  noisy: bool = False,
                  budget: "Budget | Meter | None" = None) -> Verdict:
    """Decide ``p ~c q`` with the Section 5 axiomatic procedure.

    Exact on finite (recursion-free) terms; *noisy* switches to the noisy
    congruence.  The procedure terminates on its own, so the default
    budget is unlimited — pass one to bound pathological inputs.
    """
    from .axioms.decide import congruent_finite, noisy_finite
    decider = noisy_finite if noisy else congruent_finite
    return decider(_as_process(p), _as_process(q), budget=budget)


def reach(p: "Process | str", channel: str, *,
          budget: "Budget | Meter | None" = None,
          collapse_duplicates: bool = True,
          calculus: "str | None" = None,
          presolve: bool = True) -> Verdict:
    """Can *p* reach a state offering a broadcast on *channel*?

    The flow pre-solver (:mod:`repro.flow`) answers provably-inert
    channels definitively without exploring (``stats["presolve"] ==
    "flow"`` on the verdict); ``presolve=False`` forces exploration.
    """
    from .core.reduction import can_reach_barb
    return can_reach_barb(_as_process(p), channel, budget=budget,
                          collapse_duplicates=collapse_duplicates,
                          calculus=calculus, presolve=presolve)


def lint(p: "Process | str", *,
         select: "str | list[str] | None" = None,
         ignore: "str | list[str] | None" = None,
         calculus: "str | None" = None) -> "LintReport":
    """Statically analyse *p*; returns a :class:`~repro.lint.LintReport`.

    Runs the registered passes (``BP101`` unguarded recursion, ``BP102``
    sort inconsistency, ``BP201`` deaf broadcast, ``BP202`` dead match
    branch, ``BP301`` tau-divergence risk, ``BP302`` binder hygiene —
    see :mod:`repro.lint.passes`).  When *p* is a source string it is
    parsed with a span table, so the report's findings carry caret-ready
    source excerpts; a pre-built :class:`Process` yields occurrence-path
    positions only.  *select*/*ignore* are code prefixes (``"BP2"``
    covers BP201 and BP202), comma-separated when given as one string.

    With a non-default *calculus*, the backend's extra well-formedness
    rules run as pass ``BP103`` (e.g. the wireless backend rejects terms
    that bind a topology cell); only backend-*specific* rejections fire,
    plain sort trouble stays with ``BP102``.
    """
    from .lint.engine import run_lint
    if isinstance(p, str):
        from .core.parser import parse_with_spans
        term, spans = parse_with_spans(p)
    else:
        term, spans = p, None
    return run_lint(term, spans=spans, select=select, ignore=ignore,
                    calculus=calculus)
