"""Three-valued verdicts for bounded checkers.

A bounded search that exhausts its :class:`~repro.engine.budget.Budget`
has *not* refuted anything — collapsing "cap hit" into ``False`` is the
soundness hazard this module exists to remove (the shape is borrowed
from on-the-fly model checkers: mCRL2, CADP).  Every checker therefore
returns a :class:`Verdict`:

* ``TRUE`` / ``FALSE`` — definite, produced only by a *completed* search;
* ``UNKNOWN`` — the budget tripped, with a machine-readable ``reason``
  (``"max-states"``, ``"deadline"``, ``"cancelled"``), the meter's
  resource-consumption ``stats``, and whatever partial ``evidence`` the
  search had accumulated (a distinguishing substitution candidate, the
  LTS built so far, ...).

``Verdict`` stays drop-in for boolean call sites with one deliberate
exception: converting an ``UNKNOWN`` verdict to ``bool`` raises
:class:`IndeterminateVerdict` instead of silently picking a side.  Code
that must branch three ways tests ``.is_true`` / ``.is_false`` /
``.is_unknown``; ``&``/``|``/``~`` follow Kleene's strong three-valued
logic for combining verdicts without forcing them.
"""

from __future__ import annotations

import enum
from typing import Any, Mapping

from .budget import BudgetExceeded


class Truth(enum.Enum):
    """The three truth values of a bounded check."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    def __invert__(self) -> "Truth":
        if self is Truth.TRUE:
            return Truth.FALSE
        if self is Truth.FALSE:
            return Truth.TRUE
        return Truth.UNKNOWN


class IndeterminateVerdict(BudgetExceeded):
    """``bool()`` was forced on an UNKNOWN verdict.

    Subclasses :class:`BudgetExceeded` (hence the historical
    ``StateSpaceExceeded``) on purpose: an UNKNOWN verdict in this
    codebase only ever arises from a tripped budget, so legacy
    ``except StateSpaceExceeded`` sites keep treating a truncated search
    as the exceptional case it always was.
    """

    def __init__(self, verdict: "Verdict"):
        super().__init__(verdict.reason or "max-states",
                         f"cannot coerce {verdict!r} to bool; the search "
                         f"was truncated ({verdict.reason}) — test "
                         f".is_true/.is_false/.is_unknown instead",
                         stats=dict(verdict.stats))
        self.verdict = verdict


class Verdict:
    """Outcome of one bounded analysis: a truth value plus provenance.

    Immutable.  Equality is three-valued and truth-based: two verdicts
    compare by their :class:`Truth`; comparing against a plain ``bool``
    succeeds only for a *definite* verdict of that polarity (``UNKNOWN``
    equals neither ``True`` nor ``False``).
    """

    __slots__ = ("truth", "reason", "stats", "evidence")

    def __init__(self, truth: Truth, *, reason: str | None = None,
                 stats: Mapping[str, Any] | None = None,
                 evidence: Any = None):
        if truth is not Truth.UNKNOWN and reason is not None:
            raise ValueError("only UNKNOWN verdicts carry a reason")
        object.__setattr__(self, "truth", truth)
        object.__setattr__(self, "reason", reason)
        object.__setattr__(self, "stats", dict(stats or {}))
        object.__setattr__(self, "evidence", evidence)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Verdict is immutable")

    # -- constructors -----------------------------------------------------
    @classmethod
    def of(cls, flag: bool, *, stats: Mapping[str, Any] | None = None,
           evidence: Any = None) -> "Verdict":
        """A definite verdict from a completed search."""
        return cls(Truth.TRUE if flag else Truth.FALSE, stats=stats,
                   evidence=evidence)

    @classmethod
    def unknown(cls, reason: str, *,
                stats: Mapping[str, Any] | None = None,
                evidence: Any = None) -> "Verdict":
        return cls(Truth.UNKNOWN, reason=reason, stats=stats,
                   evidence=evidence)

    @classmethod
    def from_exceeded(cls, exc: BudgetExceeded, *,
                      evidence: Any = None) -> "Verdict":
        """The UNKNOWN verdict for a caught budget trip.

        This is the *only* path from a tripped budget to a verdict, and
        it cannot produce TRUE or FALSE — the invariant the
        budget-monotonicity property test pins down.
        """
        if evidence is None:
            evidence = exc.partial
        return cls(Truth.UNKNOWN, reason=exc.reason, stats=exc.stats,
                   evidence=evidence)

    # -- predicates -------------------------------------------------------
    @property
    def is_true(self) -> bool:
        return self.truth is Truth.TRUE

    @property
    def is_false(self) -> bool:
        return self.truth is Truth.FALSE

    @property
    def is_unknown(self) -> bool:
        return self.truth is Truth.UNKNOWN

    @property
    def is_definite(self) -> bool:
        return self.truth is not Truth.UNKNOWN

    # -- boolean protocol -------------------------------------------------
    def __bool__(self) -> bool:
        if self.truth is Truth.UNKNOWN:
            raise IndeterminateVerdict(self)
        return self.truth is Truth.TRUE

    def __eq__(self, other: Any) -> Any:
        if isinstance(other, Verdict):
            return self.truth is other.truth
        if isinstance(other, Truth):
            return self.truth is other
        if isinstance(other, bool):
            return self.is_definite and (self.truth is Truth.TRUE) == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.truth)

    # -- Kleene algebra ---------------------------------------------------
    def _coerce(self, other: Any) -> "Verdict | None":
        if isinstance(other, Verdict):
            return other
        if isinstance(other, bool):
            return Verdict.of(other)
        return None

    def __invert__(self) -> "Verdict":
        return Verdict(~self.truth, reason=self.reason, stats=self.stats,
                       evidence=self.evidence)

    def __and__(self, other: Any) -> "Verdict":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        if self.is_false:
            return self
        if o.is_false:
            return o
        if self.is_unknown:
            return self
        if o.is_unknown:
            return o
        return Verdict(Truth.TRUE, stats=self.stats)

    __rand__ = __and__

    def __or__(self, other: Any) -> "Verdict":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        if self.is_true:
            return self
        if o.is_true:
            return o
        if self.is_unknown:
            return self
        if o.is_unknown:
            return o
        return Verdict(Truth.FALSE, stats=self.stats)

    __ror__ = __or__

    def __repr__(self) -> str:
        if self.is_unknown:
            return f"<Verdict UNKNOWN reason={self.reason!r}>"
        return f"<Verdict {self.truth.name}>"
