"""``repro.engine`` — resource governance and three-valued verdicts.

The robustness substrate under every bounded analysis in the repro:

* :class:`Budget` / :class:`Meter` / :class:`CancelToken` — declarative
  resource caps (states, wall-clock deadline with an injectable clock,
  cooperative cancellation) and their consumption accounting;
* :class:`Verdict` / :class:`Truth` — three-valued results.  A tripped
  budget can only ever yield ``UNKNOWN(reason=...)``, never a definite
  answer;
* :func:`govern` — an ambient shared meter for composite analyses and
  the CLI's ``--timeout`` / ``--max-states``;
* :class:`BudgetExceeded` — the raw-explorer trip signal (a subclass of
  the historical :class:`StateSpaceExceeded`), carrying partial results
  for graceful degradation.

See ``docs/api.md`` for the two-layer contract (raw explorers raise,
verdict-level checkers degrade to UNKNOWN) and the facade
(:mod:`repro.api`) that most users should import instead.
"""

from .budget import (
    POLL_INTERVAL,
    UNLIMITED,
    Budget,
    BudgetExceeded,
    CancelToken,
    Meter,
    StateSpaceExceeded,
    active_meter,
    govern,
    legacy_cap,
    resolve_meter,
)
from .verdict import IndeterminateVerdict, Truth, Verdict

__all__ = [
    "Budget", "BudgetExceeded", "CancelToken", "Meter",
    "StateSpaceExceeded", "IndeterminateVerdict", "Truth", "Verdict",
    "UNLIMITED", "POLL_INTERVAL",
    "active_meter", "govern", "legacy_cap", "resolve_meter",
]
