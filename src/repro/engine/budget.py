"""Resource budgets for bounded analyses.

Every analysis in this repro is a bounded search over a potentially
infinite state space — image-finiteness (Theorem 1 / Definition 9 of the
paper) only guarantees *per-state* finiteness, so every checker needs a
cap.  This module centralises those caps:

* :class:`Budget` — an immutable resource *specification*: a state cap, a
  wall-clock deadline (with an injectable clock for deterministic tests)
  and a cooperative :class:`CancelToken`;
* :class:`Meter` — one *consumption* of a budget.  Exploration loops call
  :meth:`Meter.charge` per state/pair and :meth:`Meter.tick` on other
  iterations; a tripped meter raises :class:`BudgetExceeded`;
* :func:`govern` — an ambient (contextvar-scoped) meter: every engine
  entry point called inside ``with govern(budget):`` that is not given an
  explicit budget shares one resource pool.  This is how composite
  checkers (congruence over many substitutions, a driver running many
  checks) govern their sub-searches; note an explicit ``budget=`` beats
  the ambient pool, so governed calls must leave ``budget`` unset.

The contract has two layers:

* **raw explorers** (``build_step_lts``, ``reachable_states``,
  ``solve_game``, ...) raise :class:`BudgetExceeded` when the meter
  trips, attaching whatever partial result exists to ``exc.partial``;
* **verdict-level checkers** (``labelled_bisimilar``, ``can_reach_barb``,
  ...) catch the trip and return
  :class:`~repro.engine.verdict.Verdict` ``UNKNOWN`` — a tripped budget
  can *never* produce a definite answer.

:class:`StateSpaceExceeded` (historically defined in
``repro.core.reduction``, still re-exported there) lives here so that
``except StateSpaceExceeded`` written against older versions keeps
catching budget trips.
"""

from __future__ import annotations

import time
import warnings
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..obs import metrics as _metrics
from ..obs.state import STATE as _OBS


class StateSpaceExceeded(RuntimeError):
    """Raised when a bounded search exceeds its state budget."""


class BudgetExceeded(StateSpaceExceeded):
    """A resource budget tripped mid-search.

    ``reason`` is machine-readable: ``"max-states"``, ``"deadline"`` or
    ``"cancelled"``.  ``stats`` is the tripping meter's consumption
    snapshot; ``partial`` carries whatever partial result the raising
    explorer had built (the LTS so far, the reachable prefix, ...) for
    graceful degradation at the verdict layer.
    """

    def __init__(self, reason: str, message: str, *,
                 stats: dict[str, Any] | None = None,
                 partial: Any = None):
        super().__init__(message)
        self.reason = reason
        self.stats = dict(stats or {})
        self.partial = partial


class CancelToken:
    """Cooperative cancellation flag, checked by exploration loops.

    Thread-safe by virtue of being a single boolean flip: any thread (or
    signal handler) may call :meth:`cancel`; the governed search observes
    it at its next poll and unwinds with ``UNKNOWN(reason='cancelled')``.
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:
        return f"CancelToken(cancelled={self._cancelled})"


#: How many charge/tick calls between deadline/cancellation polls.  Polls
#: are two attribute reads plus (with a deadline) one clock call; 64 keeps
#: the governed overhead well under the 2% benchmark gate while bounding
#: the reaction latency to a cancel/deadline.
POLL_INTERVAL = 64


@dataclass(frozen=True)
class Budget:
    """An immutable resource specification for one bounded analysis.

    ``max_states`` caps the number of *charged units* — states, pairs,
    tau-closure members: whatever the governed search interns counts
    against one shared pool.  ``deadline`` is in seconds of wall clock
    from the moment the meter starts; ``clock`` is injectable so tests
    can trip deadlines deterministically.  ``cancel`` is polled
    cooperatively.  All fields default to "unlimited".
    """

    max_states: int | None = None
    deadline: float | None = None
    cancel: CancelToken | None = None
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)

    def meter(self) -> "Meter":
        """Start consuming this budget (the clock starts now)."""
        return Meter(self)

    def scaled(self, factor: float) -> "Budget":
        """A copy with numeric limits multiplied by *factor* (for the
        budget-monotonicity property: UNKNOWN at B may become definite at
        ``B.scaled(10)``, never the reverse)."""
        return Budget(
            max_states=(None if self.max_states is None
                        else max(1, int(self.max_states * factor))),
            deadline=(None if self.deadline is None
                      else self.deadline * factor),
            cancel=self.cancel, clock=self.clock)


#: The all-unlimited budget — metering without limits, used as the
#: fallback when neither an explicit nor an ambient budget is given and
#: the call site declares no default of its own.
UNLIMITED = Budget()


class Meter:
    """Mutable consumption state of one :class:`Budget`.

    Shared freely between the phases of a composite analysis (graph
    build, then refinement; game exploration, then sub-checks): all
    phases draw from the same pool, and once tripped every further
    ``charge``/``tick`` re-raises immediately so a governed composite
    short-circuits to UNKNOWN.
    """

    __slots__ = ("budget", "states", "tripped", "_limit", "_deadline_at",
                 "_cancel", "_clock", "_countdown", "_watching", "_t0")

    def __init__(self, budget: Budget):
        self.budget = budget
        self.states = 0
        self.tripped: str | None = None
        self._limit = budget.max_states
        self._cancel = budget.cancel
        self._clock = budget.clock
        self._t0 = self._clock()
        self._deadline_at = (None if budget.deadline is None
                             else self._t0 + budget.deadline)
        self._watching = (self._deadline_at is not None
                          or self._cancel is not None)
        self._countdown = POLL_INTERVAL

    # -- consumption ------------------------------------------------------
    def charge(self, n: int = 1) -> None:
        """Account for *n* newly interned states/pairs; raise on trip."""
        if self.tripped is not None:
            self._reraise()
        self.states += n
        if self._limit is not None and self.states > self._limit:
            self._trip("max-states",
                       f"state budget of {self._limit} exhausted")
        if self._watching:
            self._countdown -= n
            if self._countdown <= 0:
                self._poll()

    def tick(self) -> None:
        """Cheap per-iteration heartbeat: deadline/cancellation only."""
        if self.tripped is not None:
            self._reraise()
        if self._watching:
            self._countdown -= 1
            if self._countdown <= 0:
                self._poll()

    def check(self) -> None:
        """Force an immediate deadline/cancellation poll."""
        if self.tripped is not None:
            self._reraise()
        if self._watching:
            self._poll()

    # -- introspection ----------------------------------------------------
    @property
    def watching(self) -> bool:
        """True when deadline/cancellation polling is live.

        Hot loops that never intern states (partition refinement, game
        back-propagation) skip ticking entirely when nothing is watched,
        keeping ungoverned runs at zero metering overhead.
        """
        return self._watching or self.tripped is not None

    def elapsed(self) -> float:
        return self._clock() - self._t0

    def remaining_states(self) -> int | None:
        if self._limit is None:
            return None
        return max(0, self._limit - self.states)

    def stats(self) -> dict[str, Any]:
        """Consumption snapshot (embedded in verdicts and bench rows)."""
        return {
            "states": self.states,
            "max_states": self._limit,
            "elapsed_s": self.elapsed(),
            "deadline_s": self.budget.deadline,
            "tripped": self.tripped,
        }

    def __repr__(self) -> str:
        cap = "inf" if self._limit is None else str(self._limit)
        flag = f", tripped={self.tripped!r}" if self.tripped else ""
        return f"Meter(states={self.states}/{cap}{flag})"

    # -- tripping ---------------------------------------------------------
    def _poll(self) -> None:
        self._countdown = POLL_INTERVAL
        if self._cancel is not None and self._cancel.cancelled:
            self._trip("cancelled", "search cancelled cooperatively")
        if self._deadline_at is not None and self._clock() > self._deadline_at:
            self._trip("deadline",
                       f"deadline of {self.budget.deadline}s exceeded")

    def _trip(self, reason: str, message: str) -> None:
        self.tripped = reason
        if _OBS.enabled:
            _metrics.inc("engine.budget_tripped")
        raise BudgetExceeded(reason, message, stats=self.stats())

    def _reraise(self) -> None:
        raise BudgetExceeded(self.tripped or "max-states",
                             f"budget already tripped ({self.tripped})",
                             stats=self.stats())


# ---------------------------------------------------------------------------
# Ambient governance
# ---------------------------------------------------------------------------

_ACTIVE: ContextVar[Meter | None] = ContextVar("repro_engine_meter",
                                               default=None)


def active_meter() -> Meter | None:
    """The ambient meter installed by the innermost :func:`govern`."""
    return _ACTIVE.get()


@contextmanager
def govern(budget: "Budget | Meter") -> Iterator[Meter]:
    """Install *budget* as the ambient resource pool for the block.

    Every engine entry point called inside the block without an explicit
    ``budget=`` draws from this single shared meter — the mechanism
    behind the CLI's ``--timeout``/``--max-states`` and behind composite
    checkers that must not let a sub-search out-live the whole.
    """
    meter = budget if isinstance(budget, Meter) else budget.meter()
    token = _ACTIVE.set(meter)
    try:
        yield meter
    finally:
        _ACTIVE.reset(token)


def resolve_meter(budget: "Budget | Meter | None",
                  default: Budget | None = None) -> Meter:
    """The meter a bounded entry point should draw from.

    Precedence: an explicit ``budget=`` (a :class:`Budget` starts a fresh
    meter; a :class:`Meter` is shared as-is) beats the ambient
    :func:`govern` meter, which beats the call site's *default* budget,
    which beats :data:`UNLIMITED`.
    """
    if isinstance(budget, Meter):
        return budget
    if isinstance(budget, Budget):
        return budget.meter()
    if budget is not None:
        raise TypeError(
            f"budget must be a Budget, a Meter or None, got {type(budget).__name__}")
    active = _ACTIVE.get()
    if active is not None:
        return active
    return (default if default is not None else UNLIMITED).meter()


# ---------------------------------------------------------------------------
# Deprecation shims for the pre-Budget bound kwargs
# ---------------------------------------------------------------------------

def legacy_cap(func_name: str, budget: "Budget | Meter | None",
               **legacy: int | None) -> "Budget | Meter | None":
    """Translate deprecated ``max_states=``/``max_pairs=``-style kwargs.

    Returns *budget* unchanged when no legacy kwarg was passed; otherwise
    emits a :class:`DeprecationWarning` and returns a :class:`Budget`
    with the cap routed through ``max_states``.  Passing both the new and
    a deprecated spelling is an error.
    """
    given = {k: v for k, v in legacy.items() if v is not None}
    if not given:
        return budget
    if budget is not None:
        raise TypeError(
            f"{func_name}() got budget= and deprecated "
            f"{sorted(given)}; pass only budget=")
    spelt = ", ".join(f"{k}={v}" for k, v in sorted(given.items()))
    # All legacy caps bound the same kind of interning; when several are
    # given the loosest governs the unified pool (the historical caps
    # bounded *different* sub-searches, so the pool must not be tighter
    # than the largest of them).
    cap = max(given.values())
    merged = ""
    if len(given) > 1:
        merged = (f"; the caps are unified into one shared pool of "
                  f"max_states={cap} — each historical cap bounded its "
                  f"own sub-search, so sub-searches previously bounded "
                  f"by a smaller cap may now explore up to the pool")
    warnings.warn(
        f"{func_name}({spelt}) is deprecated; pass "
        f"budget=repro.engine.Budget(max_states=N) instead{merged}",
        DeprecationWarning, stacklevel=3)
    return Budget(max_states=cap)
