"""``repro.lint`` — static analysis for bpi process terms.

The paper's calculus only works under static side conditions it never
mechanises: well-sortedness (Table 2's input/discard dichotomy breaks if
one channel carries two arities), weak guardedness of recursion (the
Tables 6-8 axiomatisation's side condition), and the "noisy" broadcast
semantics in which a send fires even with zero listeners — a rich source
of silent modelling bugs.  This package turns those side conditions into
a diagnostics layer:

* :class:`~repro.lint.diagnostics.Diagnostic` — code, severity, message
  and location (occurrence path + source span);
* the built-in passes, ``BP101`` … ``BP404``
  (:mod:`repro.lint.passes` has the syntactic catalogue,
  :mod:`repro.flow.lints` the flow-analysis-backed BP4xx family);
* :func:`~repro.lint.engine.run_lint` — the driver, returning a
  :class:`~repro.lint.diagnostics.LintReport`;
* :func:`~repro.lint.corpus.corpus` — every apps/examples term, linted
  in CI so the paper's worked examples stay clean.

Typical use goes through the facade or the CLI::

    import repro
    report = repro.lint("nu x x!.0")
    print(report.format_text())        # BP201 warning + caret excerpt

    python -m repro lint "nu x x!.0"   # exit 1, findings on stdout

Locations are **occurrence paths** (child indices from the root) with a
side :class:`~repro.core.spans.SpanTable` — terms are hash-consed, so a
span can never live on the node itself.  See docs/static_analysis.md.
"""

from __future__ import annotations

from .corpus import corpus, corpus_names
from .diagnostics import Diagnostic, LintReport, Severity
from .engine import run_lint, selected_passes
from .passes import PASS_REGISTRY, LintPass, lint_pass

# Registering the flow-backed BP4xx passes needs the decorator above to
# be fully defined, hence the import-at-the-end.
from ..flow import lints as _flow_lints  # noqa: E402,F401

__all__ = [
    "Diagnostic", "LintReport", "Severity",
    "run_lint", "selected_passes",
    "PASS_REGISTRY", "LintPass", "lint_pass",
    "corpus", "corpus_names",
]
