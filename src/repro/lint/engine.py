"""The lint driver: pass selection, execution, reporting.

:func:`run_lint` runs the registered passes (:mod:`repro.lint.passes`)
over one term, resolves occurrence paths against an optional span table
and returns a :class:`~repro.lint.diagnostics.LintReport`.  Each pass
executes inside an ``obs`` span (``lint.BPxxx``) and bumps the
``lint.findings`` counter, so ``--trace``/``--metrics`` show where
analysis time goes (see docs/observability.md).

Selection
---------
``select`` / ``ignore`` take iterables of code *prefixes* — ``"BP1"``
selects BP101 and BP102, ``"BP201"`` exactly BP201.  ``ignore`` wins
over ``select``; a selector matching no registered pass raises
``ValueError`` (catching typos beats silently linting with nothing).
"""

from __future__ import annotations

import time
from typing import Iterable

from .. import obs
from ..core.spans import SpanTable
from ..core.syntax import Process
from .diagnostics import Diagnostic, LintReport, Severity
from .passes import PASS_REGISTRY, LintPass

_SEVERITY_BY_NAME = {
    "error": Severity.ERROR,
    "warning": Severity.WARNING,
    "info": Severity.INFO,
}


def _as_prefixes(value: "str | Iterable[str] | None") -> tuple[str, ...]:
    if value is None:
        return ()
    if isinstance(value, str):
        value = value.split(",")
    return tuple(v.strip() for v in value if v.strip())


def selected_passes(select: "str | Iterable[str] | None" = None,
                    ignore: "str | Iterable[str] | None" = None,
                    ) -> list[LintPass]:
    """The registered passes filtered by select/ignore code prefixes."""
    want = _as_prefixes(select)
    drop = _as_prefixes(ignore)
    codes = sorted(PASS_REGISTRY)
    for prefix in want + drop:
        if not any(c.startswith(prefix) for c in codes):
            raise ValueError(
                f"selector {prefix!r} matches no registered pass "
                f"(known: {', '.join(codes)})")
    out = []
    for code in codes:
        if want and not any(code.startswith(p) for p in want):
            continue
        if any(code.startswith(p) for p in drop):
            continue
        out.append(PASS_REGISTRY[code])
    return out


def run_lint(term: Process, *,
             spans: SpanTable | None = None,
             select: "str | Iterable[str] | None" = None,
             ignore: "str | Iterable[str] | None" = None,
             calculus: "str | None" = None) -> LintReport:
    """Run the (selected) passes over *term* and collect a report.

    Passes are pure syntactic analyses: the term is never mutated, no
    new nodes are interned, no recursion is unfolded.  *spans* (from
    :func:`repro.core.parser.parse_with_spans`) positions findings in
    the original source.

    A non-default *calculus* adds the backend's well-formedness check as
    synthetic pass ``BP103``: a term the backend's ``check_sorts``
    rejects (e.g. a bound wireless topology cell) is reported as an
    error at the root.  Only *backend-specific* rejections fire — a term
    the default backend rejects too is plain sort trouble, which is
    BP102's (scope-aware) territory.
    """
    diagnostics: list[Diagnostic] = []
    timings: dict[str, float] = {}
    if calculus is not None:
        from ..calculi import registry as _registry
        backend = _registry.resolve(calculus)
        if backend.name != "bpi":
            t0 = time.perf_counter()
            try:
                backend.check_sorts(term)
            except ValueError as exc:
                try:
                    _registry.default().check_sorts(term)
                except ValueError:
                    pass  # rejected by every backend: BP102's territory
                else:
                    diagnostics.append(Diagnostic(
                        "BP103", Severity.ERROR,
                        f"ill-formed for the {backend.name!r} backend: "
                        f"{exc}"))
            timings["BP103"] = time.perf_counter() - t0
    for p in selected_passes(select, ignore):
        severity = _SEVERITY_BY_NAME[p.severity]
        t0 = time.perf_counter()
        with obs.span(f"lint.{p.code}", title=p.title) as sp:
            n_before = len(diagnostics)
            for path, message in p.fn(term):
                span = spans.get(path) if spans is not None else None
                diagnostics.append(
                    Diagnostic(p.code, severity, message, path, span))
            found = len(diagnostics) - n_before
            sp.set(findings=found)
        timings[p.code] = time.perf_counter() - t0
        if obs.STATE.enabled and found:
            obs.inc("lint.findings", found)
    diagnostics.sort(key=Diagnostic.sort_key)
    return LintReport(term=term, diagnostics=diagnostics, spans=spans,
                      timings=timings)
