"""The built-in lint passes (BP codes) over bpi process terms.

Every pass is a **pure syntactic analysis**: it walks the term (tracking
occurrence paths in ``children()`` order), creates no new process nodes
and unfolds no recursion — so linting never grows the intern table or
perturbs the kernel's caches (property-tested in ``tests/test_lint.py``).

Catalogue
---------
=======  ========  ===========================================================
code     severity  meaning
=======  ========  ===========================================================
BP101    error     recursion variable occurs unguarded in its ``rec`` body
                   (breaks the guardedness side condition of Tables 6-8)
BP102    error     sort/arity inconsistency (a channel used at two shapes
                   breaks the input/discard dichotomy of Table 2)
BP201    warning   deaf broadcast: output on a restricted channel that no
                   listener can ever hear (legal but silent under the noisy
                   semantics — the Section 6 ``a.(b+c)`` vs ``a.b+a.c`` trap)
BP202    warning   statically dead branch: a match between distinct
                   restricted names (or ``[x=x]`` with an else-branch)
BP301    warning   tau-divergence risk: every re-entry into the recursion is
                   guarded only by ``tau`` prefixes
BP302    info      unused restriction / ``nu``-or-input binder shadowing an
                   enclosing binder
=======  ========  ===========================================================

A pass is a generator ``fn(term) -> Iterator[(path, message)]``; the
engine (:mod:`repro.lint.engine`) stamps code/severity/span on top.
Register new passes with :func:`lint_pass`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from ..core.freenames import free_names
from ..core.names import Name
from ..core.sorts import SortError, infer_sorts
from ..core.syntax import (
    NIL,
    Ident,
    Input,
    Match,
    Output,
    Par,
    Process,
    Rec,
    Restrict,
    Sum,
    Tau,
)

#: Occurrence path.
Path = tuple[int, ...]

#: A pass body: yields (occurrence path, message) findings.
PassFn = Callable[[Process], Iterable[tuple[Path, str]]]

# Severity names are resolved lazily by the engine to avoid an import
# cycle; passes declare them as strings.
_SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class LintPass:
    """A registered pass: stable code, one severity, a title, the body."""

    code: str
    title: str
    severity: str
    fn: PassFn

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(f"severity must be one of {_SEVERITIES}")


#: The registry, code -> pass, in registration (== code) order.
PASS_REGISTRY: dict[str, LintPass] = {}


def lint_pass(code: str, title: str,
              severity: str) -> Callable[[PassFn], PassFn]:
    """Register a pass under *code*; codes must be unique."""

    def register(fn: PassFn) -> PassFn:
        if code in PASS_REGISTRY:
            raise ValueError(f"duplicate lint pass code {code!r}")
        PASS_REGISTRY[code] = LintPass(code, title, severity, fn)
        return fn

    return register


def _indexed_children(q: Process) -> Iterator[tuple[int, Process]]:
    return enumerate(q.children())


# ---------------------------------------------------------------------------
# BP101 — unguarded recursion
# ---------------------------------------------------------------------------

@lint_pass("BP101", "unguarded recursion", "error")
def bp101_unguarded_recursion(term: Process) -> Iterator[tuple[Path, str]]:
    """A ``rec``-bound identifier occurring with no prefix above it.

    The paper's axiomatisation (Tables 6-8) and the termination of the
    discard/LTS rules (10)/(11) both require every recursion variable to
    occur *guarded* — strictly underneath a prefix — in its body.
    """

    def walk(q: Process, unguarded: frozenset[str],
             path: Path) -> Iterator[tuple[Path, str]]:
        if isinstance(q, Ident):
            if q.ident in unguarded:
                yield path, (
                    f"recursion variable {q.ident!r} occurs unguarded in its "
                    f"rec body; the axiomatisation's side condition "
                    f"(Tables 6-8) requires it strictly under a prefix")
            return
        if isinstance(q, (Tau, Input, Output)):
            yield from walk(q.cont, frozenset(), path + (0,))
            return
        if isinstance(q, Rec):
            yield from walk(q.body, unguarded | {q.ident}, path + (0,))
            return
        for i, c in _indexed_children(q):
            yield from walk(c, unguarded, path + (i,))

    yield from walk(term, frozenset(), ())


# ---------------------------------------------------------------------------
# BP102 — sort / arity inconsistency
# ---------------------------------------------------------------------------

@lint_pass("BP102", "sort inconsistency", "error")
def bp102_sort_inconsistency(term: Process) -> Iterator[tuple[Path, str]]:
    """The term is ill-sorted (a channel carries tuples of two shapes).

    Mixing arities on one channel breaks the input/discard dichotomy of
    Table 2: a listener at the wrong arity can neither receive nor
    discard.  Delegates to :func:`repro.core.sorts.infer_sorts`, which
    positions the failure at the first inconsistent occurrence.
    """
    try:
        infer_sorts(term)
    except SortError as exc:
        yield (exc.path or ()), f"ill-sorted term: {exc}"


# ---------------------------------------------------------------------------
# BP201 — deaf broadcast
# ---------------------------------------------------------------------------

class _DeafScan:
    """Usage summary of one restricted name inside its scope."""

    __slots__ = ("outputs", "heard", "escapes")

    def __init__(self) -> None:
        self.outputs: list[Path] = []   # x<...> occurrences (x as subject)
        self.heard = False              # x(...) listener in scope
        self.escapes = False            # x as payload / match / rec argument


def _scan_restricted(q: Process, x: Name, path: Path, acc: _DeafScan) -> None:
    """Collect uses of restricted *x* within its scope (stops at shadows)."""
    if isinstance(q, Input):
        if q.chan == x:
            acc.heard = True
        if x in q.params:  # rebound below this input
            return
        _scan_restricted(q.cont, x, path + (0,), acc)
    elif isinstance(q, Output):
        if q.chan == x:
            acc.outputs.append(path)
        if x in q.args:
            acc.escapes = True
        _scan_restricted(q.cont, x, path + (0,), acc)
    elif isinstance(q, Restrict):
        if q.name == x:  # inner nu shadows
            return
        _scan_restricted(q.body, x, path + (0,), acc)
    elif isinstance(q, Match):
        if x in (q.left, q.right):
            # comparing against x: a received copy of x may flow here, so
            # a listener could appear dynamically — stay quiet.
            acc.escapes = True
        _scan_restricted(q.then, x, path + (0,), acc)
        _scan_restricted(q.orelse, x, path + (1,), acc)
    elif isinstance(q, (Sum, Par)):
        _scan_restricted(q.left, x, path + (0,), acc)
        _scan_restricted(q.right, x, path + (1,), acc)
    elif isinstance(q, Tau):
        _scan_restricted(q.cont, x, path + (0,), acc)
    elif isinstance(q, Ident):
        if x in q.args:
            acc.escapes = True
    elif isinstance(q, Rec):
        if x in q.args:
            acc.escapes = True
        if x in q.params:  # param rebinds x inside the body
            return
        _scan_restricted(q.body, x, path + (0,), acc)
    # Nil: nothing.


@lint_pass("BP201", "deaf broadcast", "warning")
def bp201_deaf_broadcast(term: Process) -> Iterator[tuple[Path, str]]:
    """An output on a restricted channel that nothing can ever hear.

    Under the noisy broadcast semantics a send fires even with zero
    listeners (Section 6's ``a.(b+c)`` vs ``a.b+a.c`` observation), so
    the term is *legal* — but the broadcast is unobservable forever when
    the restricted subject never escapes its scope and no input on it
    exists in scope.  Almost always a modelling bug.

    The syntactic scan treats any escape (payload, match operand,
    recursion argument) as "a listener could appear dynamically" and
    stays quiet.  The flow analysis (:mod:`repro.flow`) cross-checks
    that heuristic: when the may-extrude set proves the name never
    actually reaches the environment and nothing may ever hear it, the
    broadcast is deaf after all and the pass fires anyway.
    """

    def flow_confirms_deaf(path: Path) -> bool:
        # Lazy import: repro.lint must stay importable without the flow
        # layer (and without triggering its registration order).
        from ..flow.analysis import flow_analysis
        analysis = flow_analysis(term, mode="open")
        if analysis.incomplete:
            return False
        for info in analysis.restrictions:
            if info.path == path:
                return not info.extruded and not info.may_be_heard
        return False

    def walk(q: Process, path: Path) -> Iterator[tuple[Path, str]]:
        if isinstance(q, Restrict):
            acc = _DeafScan()
            _scan_restricted(q.body, q.name, path + (0,), acc)
            if acc.outputs and not acc.heard:
                if not acc.escapes:
                    for opath in acc.outputs:
                        yield opath, (
                            f"deaf broadcast: output on restricted channel "
                            f"{q.name!r} can never be heard (no listener in "
                            f"scope and the name never escapes); the noisy "
                            f"semantics lets it fire silently")
                elif flow_confirms_deaf(path):
                    for opath in acc.outputs:
                        yield opath, (
                            f"deaf broadcast: output on restricted channel "
                            f"{q.name!r} can never be heard (the name "
                            f"appears to escape, but the flow analysis "
                            f"proves it is never extruded and nothing may "
                            f"listen); the noisy semantics lets it fire "
                            f"silently")
        for i, c in _indexed_children(q):
            yield from walk(c, path + (i,))

    yield from walk(term, ())


# ---------------------------------------------------------------------------
# BP202 — statically dead branch
# ---------------------------------------------------------------------------

@lint_pass("BP202", "dead match branch", "warning")
def bp202_dead_branch(term: Process) -> Iterator[tuple[Path, str]]:
    """A match branch no execution can ever take.

    ``[x=y]`` between names bound by two *distinct* restrictions can
    never succeed — no substitution identifies two different restricted
    names — so the then-branch is dead; dually ``[x=x]`` never fails, so
    a non-nil else-branch is dead.
    """

    def walk(q: Process, nu_of: dict[Name, Path],
             path: Path) -> Iterator[tuple[Path, str]]:
        if isinstance(q, Match):
            if q.left == q.right:
                if q.orelse is not NIL:
                    yield path + (1,), (
                        f"dead else-branch: match [{q.left}={q.right}] "
                        f"always succeeds")
            else:
                lb, rb = nu_of.get(q.left), nu_of.get(q.right)
                if lb is not None and rb is not None and lb != rb:
                    if q.then is not NIL:
                        yield path + (0,), (
                            f"dead then-branch: {q.left!r} and {q.right!r} "
                            f"are distinct restricted names, so the match "
                            f"[{q.left}={q.right}] can never succeed")
            yield from walk(q.then, nu_of, path + (0,))
            yield from walk(q.orelse, nu_of, path + (1,))
            return
        if isinstance(q, Restrict):
            yield from walk(q.body, {**nu_of, q.name: path}, path + (0,))
            return
        if isinstance(q, Input):
            # received values may *be* some restricted name (extrusion):
            # params are unknowns, not fresh nus.
            inner = {k: v for k, v in nu_of.items() if k not in q.params}
            yield from walk(q.cont, inner, path + (0,))
            return
        if isinstance(q, Rec):
            inner = {k: v for k, v in nu_of.items() if k not in q.params}
            yield from walk(q.body, inner, path + (0,))
            return
        for i, c in _indexed_children(q):
            yield from walk(c, nu_of, path + (i,))

    yield from walk(term, {}, ())


# ---------------------------------------------------------------------------
# BP301 — tau-divergence risk
# ---------------------------------------------------------------------------

#: Guard-chain states for the BP301 scan: no prefix above the occurrence
#: yet (BP101's domain, ignored here), only tau prefixes, or at least one
#: visible (input/output) prefix.
_UNGUARDED, _TAU_ONLY, _VISIBLE = 0, 1, 2


def _rec_reentry(body: Process, ident: str, guard: int,
                 found: list[bool]) -> None:
    """found = [any guarded occurrence seen, all of them tau-only]."""
    if isinstance(body, Ident):
        if body.ident == ident and guard != _UNGUARDED:
            found[0] = True
            if guard != _TAU_ONLY:
                found[1] = False
        return
    if isinstance(body, Tau):
        _rec_reentry(body.cont, ident, max(guard, _TAU_ONLY), found)
        return
    if isinstance(body, (Input, Output)):
        _rec_reentry(body.cont, ident, _VISIBLE, found)
        return
    if isinstance(body, Rec):
        if body.ident == ident:  # inner rec shadows the identifier
            return
        _rec_reentry(body.body, ident, guard, found)
        return
    for c in body.children():
        _rec_reentry(c, ident, guard, found)


@lint_pass("BP301", "tau-divergence risk", "warning")
def bp301_tau_divergence(term: Process) -> Iterator[tuple[Path, str]]:
    """A recursion whose every unfolding path is tau-only.

    When every occurrence of the recursion variable sits under nothing
    but ``tau`` prefixes, each unfolding re-enters the loop without any
    observable action: the process can diverge silently.  Weak
    equivalences quotient such loops away, but simulators and bounded
    explorers will spin on them.
    """

    def walk(q: Process, path: Path) -> Iterator[tuple[Path, str]]:
        if isinstance(q, Rec):
            found = [False, True]
            _rec_reentry(q.body, q.ident, _UNGUARDED, found)
            if found[0] and found[1]:
                yield path, (
                    f"tau-divergence risk: every re-entry into rec "
                    f"{q.ident!r} is guarded only by tau prefixes, so the "
                    f"recursion can unfold forever without a visible action")
        for i, c in _indexed_children(q):
            yield from walk(c, path + (i,))

    yield from walk(term, ())


# ---------------------------------------------------------------------------
# BP302 — unused restriction / shadowed binder
# ---------------------------------------------------------------------------

@lint_pass("BP302", "unused restriction / shadowed binder", "info")
def bp302_binder_hygiene(term: Process) -> Iterator[tuple[Path, str]]:
    """Binder hygiene: restrictions that bind nothing, binders that shadow.

    ``nu x p`` with ``x`` not free in ``p`` creates a channel nobody can
    ever use.  For shadowing, only the genuinely suspicious shapes are
    flagged: a ``nu`` reusing any enclosing binder's name (a *new*
    private channel silently cuts off the old one), and an input
    parameter reusing a **restricted** name (the received value hides a
    private channel).  Re-receiving into the same parameter name in a
    sequential protocol, and ``rec`` parameters named after their
    instantiating channels, are idiomatic — the paper's own terms do
    both — so neither is reported.
    """

    def walk(q: Process, bound: frozenset[Name], restricted: frozenset[Name],
             path: Path) -> Iterator[tuple[Path, str]]:
        if isinstance(q, Restrict):
            if q.name not in free_names(q.body):
                yield path, (
                    f"unused restriction: nu {q.name!r} binds a channel "
                    f"that does not occur in its scope")
            if q.name in bound:
                yield path, (
                    f"shadowed binder: nu {q.name!r} reuses the name of an "
                    f"enclosing binder; the outer {q.name!r} is unreachable "
                    f"below this point")
            yield from walk(q.body, bound | {q.name}, restricted | {q.name},
                            path + (0,))
            return
        if isinstance(q, Input):
            for x in q.params:
                if x in restricted:
                    yield path, (
                        f"shadowed binder: input parameter {x!r} hides the "
                        f"restricted channel {x!r} bound by an enclosing nu")
            params = frozenset(q.params)
            yield from walk(q.cont, bound | params, restricted - params,
                            path + (0,))
            return
        if isinstance(q, Rec):
            params = frozenset(q.params)
            yield from walk(q.body, bound | params, restricted - params,
                            path + (0,))
            return
        for i, c in _indexed_children(q):
            yield from walk(c, bound, restricted, path + (i,))

    yield from walk(term, frozenset(), frozenset(), ())
