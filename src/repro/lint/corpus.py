"""The lint corpus: every term the apps and examples build.

CI lints these (``python -m repro lint --corpus``) so the paper's worked
examples stay clean as the analyzer grows; :mod:`benchmarks.report`
reuses the same list to track analyzer cost over a realistic term mix
(the ``lint`` block of ``BENCH_report.json``).

Entries are built lazily — :func:`corpus` constructs each term on call —
and cover all six ``repro.apps`` systems plus the distinctive parsed
terms of the ``examples/`` scripts.
"""

from __future__ import annotations

from typing import Callable

from ..core.parser import parse
from ..core.syntax import Process

#: name -> zero-argument term builder.
_BUILDERS: dict[str, Callable[[], Process]] = {}


_Builder = Callable[[], Process]


def _entry(name: str) -> Callable[[_Builder], _Builder]:
    def register(fn: _Builder) -> _Builder:
        _BUILDERS[name] = fn
        return fn
    return register


# -- apps -------------------------------------------------------------------

@_entry("apps.cycle_detection.triangle")
def _cycle_triangle() -> Process:
    from ..apps.cycle_detection import prefed_system
    return prefed_system([("a", "b"), ("b", "c"), ("c", "a")])


@_entry("apps.cycle_detection.fed")
def _cycle_fed() -> Process:
    from ..apps.cycle_detection import build_system
    return build_system([("a", "b"), ("b", "a")])


@_entry("apps.pubsub.network")
def _pubsub() -> Process:
    from ..apps.pubsub import network
    return network(["m1", "m2"], ["d1", "d2"])


@_entry("apps.pvm.groups")
def _pvm() -> Process:
    from ..apps.pvm import Bcast, Emit, JoinGroup, Receive, machine
    return machine({
        "m1": [JoinGroup("grp"), Receive("x"), Emit("seen1", "x")],
        "m2": [JoinGroup("grp"), Receive("x"), Emit("seen2", "x")],
        "snd": [Bcast("grp", "news")],
    })


@_entry("apps.radio.reliable")
def _radio_reliable() -> Process:
    from ..apps.radio import reliable_network
    return reliable_network("v", ["d1", "d2"])


@_entry("apps.radio.unreliable")
def _radio_unreliable() -> Process:
    from ..apps.radio import unreliable_network
    return unreliable_network("v", ["d1"])


@_entry("apps.ram.add")
def _ram() -> Process:
    from ..apps.ram import encode, program_add
    return encode(program_add("x", "y", "s"), {"x": 2, "y": 3})


@_entry("apps.transactions.cross_cycle")
def _transactions() -> Process:
    from ..apps.transactions import Transaction as T, build_system
    return build_system([T("t1", "r", "j", "p1"), T("t2", "w", "j", "p2"),
                         T("t2", "r", "k", "p2"), T("t1", "w", "k", "p1")])


# -- examples ---------------------------------------------------------------

_EXAMPLE_SOURCES = {
    "examples.quickstart.match": "nu v (b<v> | a(w).[w=v]{o!}{b<w>})",
    "examples.quickstart.broadcast":
        "chan<msg> | chan(x).x! | chan(y).y! | other(z).z!",
    "examples.quickstart.extrusion": "nu tok (a<tok> | a(x).x? | a(y).y?)",
    "examples.quickstart.counter":
        "rec X(c := up). c?.(x! | X<c>)",
    "examples.s6.internal_choice": "a!.(b! + c!)",
    "examples.s6.external_choice": "a!.b! + a!.c!",
}

def _example(src: str) -> _Builder:
    return lambda: parse(src)


for _name, _src in _EXAMPLE_SOURCES.items():
    _BUILDERS[_name] = _example(_src)


def corpus() -> list[tuple[str, Process]]:
    """Build and return every corpus term as ``(name, term)`` pairs."""
    return [(name, _BUILDERS[name]()) for name in sorted(_BUILDERS)]


def corpus_names() -> list[str]:
    return sorted(_BUILDERS)
