"""Diagnostic records and lint reports.

A :class:`Diagnostic` is one finding of one pass: a stable ``BPxxx``
code, a :class:`Severity`, a human message, the **occurrence path** of
the offending subterm (child indices from the root, ``children()``
order — terms are hash-consed, so the path *is* the location) and, when
the term came from source text, the resolved
:class:`~repro.core.spans.Span`.

A :class:`LintReport` is the result of one lint run: the ordered
findings plus per-pass wall-clock timings, renderable as annotated text
(with caret-underlined source excerpts) or JSON.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from ..core.spans import Span, SpanTable
from ..core.syntax import Process

#: Occurrence path (see repro.core.spans).
Path = tuple[int, ...]


class Severity(enum.IntEnum):
    """Finding severity; ordering follows gravity (ERROR > WARNING > INFO)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding: code, severity, message, and where."""

    code: str
    severity: Severity
    message: str
    path: Path = ()
    span: Span | None = None

    def sort_key(self) -> tuple[int, Path, str]:
        start = self.span.start if self.span is not None else -1
        return (start, self.path, self.code)

    def format(self, spans: SpanTable | None = None) -> str:
        """Render the finding, with a source excerpt when spans exist."""
        head = f"{self.code} {self.severity.label}: {self.message}"
        if self.span is None or spans is None:
            if self.path:
                head += f"  [at path {','.join(map(str, self.path))}]"
            return head
        line, col = spans.line_col(self.span)
        excerpt = "\n".join("    " + ln
                            for ln in spans.context(self.span).splitlines())
        return f"{head}\n  --> line {line}, column {col}\n{excerpt}"

    def to_json(self, spans: SpanTable | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "path": list(self.path),
        }
        if self.span is not None:
            payload["span"] = {"start": self.span.start, "end": self.span.end}
            if spans is not None:
                line, col = spans.line_col(self.span)
                payload["line"], payload["column"] = line, col
                payload["excerpt"] = spans.text(self.span)
        return payload


@dataclass
class LintReport:
    """Everything one lint run found (and how long each pass took)."""

    term: Process
    diagnostics: list[Diagnostic] = field(default_factory=list)
    spans: SpanTable | None = None
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the run produced no findings at all."""
        return not self.diagnostics

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> list[Diagnostic]:
        return self.by_severity(Severity.INFO)

    def counts(self) -> dict[str, int]:
        """Findings per code (zero-count codes omitted)."""
        out: dict[str, int] = {}
        for d in self.diagnostics:
            out[d.code] = out.get(d.code, 0) + 1
        return out

    def summary(self) -> str:
        if self.ok:
            return "clean: no findings"
        parts = []
        for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO):
            n = len(self.by_severity(sev))
            if n:
                parts.append(f"{n} {sev.label}{'s' if n != 1 else ''}")
        return ", ".join(parts)

    def format_text(self) -> str:
        """The findings as annotated text, one block per diagnostic."""
        blocks = [d.format(self.spans) for d in self.diagnostics]
        blocks.append(self.summary())
        return "\n".join(blocks)

    def to_json(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "counts": self.counts(),
            "diagnostics": [d.to_json(self.spans) for d in self.diagnostics],
            "timings": dict(self.timings),
        }
