"""Encodings between calculi (Section 6).

The paper states two expressiveness results (proved in the authors' FCT'99
companion paper):

* **no uniform encoding of bpi into pi exists** — a broadcast reaches any
  number of receivers in one atomic step, which point-to-point handshakes
  cannot simulate compositionally (see
  :func:`broadcast_atomicity_witness` for the executable intuition);
* **pi encodes uniformly into bpi**, adequately w.r.t. barbed
  equivalence — :func:`pi_to_bpi` implements a session-based handshake
  protocol over broadcast.

The protocol for one pi handshake on channel ``c``::

    [c<v>.P]   =  rec S. nu s nu g ( c<s, g>.( s(w).g<w, v>.[P]  + tau.S ) )
    [c(x).Q]   =  rec R. c(s, g). nu me ( s<me>
                                        | g(w, x).([w=me] [Q] , R)
                                        + tau.R )

The sender opens a *session*: it broadcasts a fresh claim channel ``s``
and grant channel ``g``.  Every current listener receives them (broadcast
cannot be refused) and races to claim by broadcasting a private token on
``s``; the sender grants the first claimant by broadcasting the winner's
token together with the value on ``g`` — every contender hears the grant,
the winner proceeds, losers (and claimants whose claim fired too late)
restart.  The ``tau`` escape hatches let a session that found no partner
(or a receiver stuck in a dead session) retry — the encoding is
*divergent*, as any uniform pi-into-broadcast encoding must be, but it
preserves and reflects weak barbs (tested on handshake scenarios,
competing receivers and late-receiver arrivals).

All other constructors are homomorphic; ``tau``, ``nu``, ``+``, ``|``,
match and recursion translate to themselves.
"""

from __future__ import annotations

from itertools import count

from ..core.builder import call, define, inp, match_eq, nu, out, par, tau
from ..core.freenames import free_names
from ..core.names import Name
from ..core.syntax import (
    NIL,
    Ident,
    Input,
    Match,
    Nil,
    Output,
    Par,
    Process,
    Rec,
    Restrict,
    Sum,
    Tau,
)


class _Fresh:
    def __init__(self, avoid: frozenset[Name]):
        self.avoid = set(avoid)
        self.counter = count()

    def __call__(self, hint: str) -> Name:
        while True:
            cand = f"{hint}{next(self.counter)}"
            if cand not in self.avoid:
                self.avoid.add(cand)
                return cand


def pi_to_bpi(p: Process) -> Process:
    """Translate a pi-calculus term into the bpi-calculus.

    The source uses the shared AST under pi semantics
    (:mod:`repro.calculi.pi`); the result is a bpi term whose weak barbs
    match the source's (adequacy is exercised in the tests — full abstraction
    is beyond the paper's own claims).
    """
    from ..core.freenames import all_names
    fresh = _Fresh(all_names(p))

    def tr(q: Process) -> Process:
        if isinstance(q, Nil):
            return NIL
        if isinstance(q, Tau):
            return Tau(tr(q.cont))
        if isinstance(q, Output):
            return _encode_send(q.chan, q.args, tr(q.cont), fresh)
        if isinstance(q, Input):
            return _encode_receive(q.chan, q.params, tr(q.cont), fresh)
        if isinstance(q, Restrict):
            return Restrict(q.name, tr(q.body))
        if isinstance(q, Match):
            return Match(q.left, q.right, tr(q.then), tr(q.orelse))
        if isinstance(q, Sum):
            return Sum(tr(q.left), tr(q.right))
        if isinstance(q, Par):
            return Par(tr(q.left), tr(q.right))
        if isinstance(q, Rec):
            return Rec(q.ident, q.params, tr(q.body), q.args)
        if isinstance(q, Ident):
            return q
        raise TypeError(f"unknown process node {type(q).__name__}")

    return tr(p)


def _encode_send(chan: Name, args: tuple[Name, ...], cont: Process,
                 fresh: _Fresh) -> Process:
    """``rec S. nu s nu g ( c<s,g>.( s(w).g<w, args>.cont + tau.S ) )``."""
    ident = fresh("SND")
    s, g, w = fresh("s"), fresh("g"), fresh("w")
    params = tuple(sorted(free_names(cont) | {chan} | set(args)))

    def body(*_names: Name) -> Process:
        attempt = inp(s, (w,),
                      Output(g, (w,) + args, cont)) + tau(call(ident, *params))
        return nu((s, g), Output(chan, (s, g), attempt))

    return define(ident, params, body)(*params)


def _encode_receive(chan: Name, binders: tuple[Name, ...], cont: Process,
                    fresh: _Fresh) -> Process:
    """``rec R. c(s,g). nu me ( s<me> | g(w,x~).([w=me] cont , R) + tau.R )``."""
    ident = fresh("RCV")
    s, g, me, w = fresh("s"), fresh("g"), fresh("me"), fresh("w")
    params = tuple(sorted((free_names(cont) - set(binders)) | {chan}))

    def body(*_names: Name) -> Process:
        retry = call(ident, *params)
        grant = inp(g, (w,) + binders,
                    match_eq(w, me, cont, retry)) + tau(retry)
        session = nu(me, par(out(s, me), grant))
        return inp(chan, (s, g), session)

    return define(ident, params, body)(*params)
