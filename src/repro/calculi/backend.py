"""The calculus-backend protocol: pluggable broadcast semantics.

The paper fixes one semantics — the Table 3 transition rules, the Table 2
discard relation, and output barbs.  ROADMAP item 3 asks for the direct
extensions named in PAPERS.md (Cao's noisy channels, graph-based wireless
broadcast), which share the syntax and the shape of the judgements but not
the judgements themselves.  :class:`CalculusBackend` names that shape:

* :meth:`step_transitions` — autonomous moves ``p -phi-> p'`` (outputs and
  ``tau``), finitely branching;
* :meth:`input_continuations` — residuals of delivering one concrete
  broadcast ``chan(values)`` to *p*;
* :meth:`discards` — the backend's discard relation ``p -a/->``;
* :meth:`barbs` — the observables of *p*;
* :meth:`check_sorts` — the backend's well-sortedness rules.

Every backend must preserve the **input/discard dichotomy**: for all *p*
and *a*, exactly one of "``input_continuations(p, a, v)`` is non-empty for
well-sorted *v*" and "``discards(p, a)``" holds.  The property suite
checks this per registered backend.

Engine layers (``lts/``, ``equiv/``, ``runtime/``, the facade and CLI)
resolve a backend through :mod:`repro.calculi.registry` and call these
methods; they never import ``core.semantics`` / ``core.discard`` directly
(contract Rule E).  The default :class:`BpiBackend` delegates to exactly
those memoized core functions, so the default path is bit-identical to
calling them directly.
"""

from __future__ import annotations

import abc
from typing import Iterable

from ..core.actions import TAU, InputAction, OutputAction, TauAction
from ..core.binders import freshen_action_binders
from ..core.discard import discards as _bpi_discards
from ..core.discard import listening_channels as _bpi_listening
from ..core.freenames import free_names
from ..core.names import Name
from ..core.reduction import barbs as _bpi_barbs
from ..core.semantics import Transition, check_sorts as _bpi_check_sorts
from ..core.semantics import input_capabilities as _bpi_caps
from ..core.semantics import input_continuations as _bpi_inputs
from ..core.semantics import step_transitions as _bpi_steps
from ..core.substitution import unfold_rec
from ..core.syntax import (
    Ident,
    Input,
    Match,
    Nil,
    Output,
    Par,
    Process,
    Rec,
    Restrict,
    Sum,
    Tau,
)


class CalculusBackend(abc.ABC):
    """One broadcast semantics: steps, delivery, discard, barbs, sorts.

    Instances are immutable apart from memo tables; the registry caches
    one instance per canonical spec so per-instance memo tables persist
    for the lifetime of a session.
    """

    #: Registry name of the backend family ("bpi", "lossy", "wireless").
    name: str = "backend"

    def __init__(self) -> None:
        self._scratch: dict[str, dict] = {}

    def memo(self, table: str) -> dict:
        """A named per-backend memo table (cleared by :meth:`clear_caches`).

        Engine layers that memoize per-state results (e.g. the reduction
        graph's ``phi_successors``) key them here for non-default
        backends, instead of on slots of the interned nodes — slot caches
        are reserved for the ``bpi`` functions they were written for.
        """
        return self._scratch.setdefault(table, {})

    @property
    def spec(self) -> str:
        """Round-trippable registry spec (``resolve(b.spec)`` ≡ *b*).

        Parameterised backends override this to include their parameters;
        the spec string is what travels to worker processes.
        """
        return self.name

    def key(self) -> str:
        """Stable identity for store keys and ledgers.

        Distinct semantics must have distinct keys — the verdict store
        mixes this into ``pair_key`` so verdicts computed under different
        backends can never answer each other.  Parameterised backends
        append a digest of their parameters.
        """
        return self.name

    # ---------------------------------------------------------------- core
    @abc.abstractmethod
    def step_transitions(self, p: Process) -> tuple[Transition, ...]:
        """All autonomous moves ``p -phi-> p'`` (outputs and tau)."""

    @abc.abstractmethod
    def input_continuations(self, p: Process, chan: Name,
                            values: tuple[Name, ...]) -> tuple[Process, ...]:
        """All residuals of delivering ``chan(values)`` to *p*."""

    @abc.abstractmethod
    def discards(self, p: Process, a: Name) -> bool:
        """True iff *p* ignores every broadcast made on *a*."""

    # ------------------------------------------------------------- derived
    @abc.abstractmethod
    def input_capabilities(self, p: Process) -> frozenset[tuple[Name, int]]:
        """The (channel, arity) pairs at which *p* can currently receive."""

    def listening_channels(self, p: Process) -> frozenset[Name]:
        """``In(p)``: channels whose broadcasts *p* does not discard."""
        return frozenset(c for (c, _k) in self.input_capabilities(p))

    def barbs(self, p: Process) -> frozenset[Name]:
        """The observables of *p* (output subjects, in every backend)."""
        return frozenset(
            action.chan for action, _t in self.step_transitions(p)
            if isinstance(action, OutputAction))

    def check_sorts(self, p: Process) -> dict[Name, int]:
        """Backend sort rules; raises ``ValueError`` on a violation."""
        return _bpi_check_sorts(p)

    def transitions(self, p: Process, universe) -> list[Transition]:
        """Steps plus inputs instantiated over a finite name universe."""
        result: list[Transition] = list(self.step_transitions(p))
        for chan, arity in sorted(self.input_capabilities(p)):
            for values in universe.vectors(arity):
                for target in self.input_continuations(p, chan, values):
                    result.append((InputAction(chan, values), target))
        return result

    def clear_caches(self) -> None:
        """Drop per-instance memo tables (hook for ``core.cache``)."""
        self._scratch.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.spec!r}>"


class BpiBackend(CalculusBackend):
    """The paper's semantics, verbatim.

    Every method forwards to the memoized free functions in
    ``core.semantics`` / ``core.discard`` / ``core.reduction`` — same
    caches, same tuples, same ordering — so routing through the registry
    is observationally identical to the pre-protocol code.
    """

    name = "bpi"

    def step_transitions(self, p: Process) -> tuple[Transition, ...]:
        return _bpi_steps(p)

    def input_continuations(self, p: Process, chan: Name,
                            values: tuple[Name, ...]) -> tuple[Process, ...]:
        return _bpi_inputs(p, chan, values)

    def discards(self, p: Process, a: Name) -> bool:
        return _bpi_discards(p, a)

    def input_capabilities(self, p: Process) -> frozenset[tuple[Name, int]]:
        return _bpi_caps(p)

    def listening_channels(self, p: Process) -> frozenset[Name]:
        return _bpi_listening(p)

    def barbs(self, p: Process) -> frozenset[Name]:
        return _bpi_barbs(p)


class StructuralBackend(CalculusBackend):
    """Table-3-shaped semantics parameterised on delivery and discard.

    Subclasses supply :meth:`discards` and the delivery judgement
    ``input_continuations``; the step relation keeps the paper's rule
    structure (tau/output prefixes, sums, matches, recursion, the
    restriction rules (5)-(7) and the parallel rules (13)/(14)) but
    routes the passive side of a broadcast through the subclass's
    delivery and discard — which is exactly where lossy and wireless
    semantics deviate from the paper.

    Steps and deliveries are memoized per backend instance, keyed on the
    interned nodes, mirroring the slot caches of the default semantics.
    """

    def _freshen_avoid(self) -> frozenset[Name]:
        """Extra names that freshly generated binders must avoid."""
        return frozenset()

    # ----------------------------------------------------------- steps
    def step_transitions(self, p: Process) -> tuple[Transition, ...]:
        memo = self.memo("steps")
        try:
            return memo[p]
        except KeyError:
            pass
        result = self._compute_steps(p)
        memo[p] = result
        return result

    def _compute_steps(self, p: Process) -> tuple[Transition, ...]:
        if isinstance(p, (Nil, Input)):
            return ()
        if isinstance(p, Tau):
            return ((TAU, p.cont),)  # rule (2)
        if isinstance(p, Output):
            return ((OutputAction(p.chan, p.args, ()), p.cont),)  # rule (4)
        if isinstance(p, Sum):  # rule (8)
            return self.step_transitions(p.left) + self.step_transitions(p.right)
        if isinstance(p, Match):  # rules (9), (10)
            branch = p.then if p.left == p.right else p.orelse
            return self.step_transitions(branch)
        if isinstance(p, Rec):  # rule (11)
            return self.step_transitions(unfold_rec(p))
        if isinstance(p, Restrict):
            return tuple(self._restrict_steps(p))
        if isinstance(p, Par):
            return tuple(self._par_steps(p))
        if isinstance(p, Ident):
            raise ValueError(
                f"cannot take transitions of open process (free identifier {p.ident!r})")
        raise TypeError(f"unknown process node {type(p).__name__}")

    def _restrict_steps(self, p: Restrict) -> list[Transition]:
        x, body = p.name, p.body
        out: list[Transition] = []
        for action, target in self.step_transitions(body):
            if isinstance(action, TauAction):  # rule (7)
                out.append((TAU, Restrict(x, target)))
                continue
            assert isinstance(action, OutputAction)
            if action.chan == x:
                # Rule (6): a broadcast on the restricted channel is
                # internal; the scope of extruded names is re-established.
                q = target
                for b in reversed(action.binders):
                    q = Restrict(b, q)
                out.append((TAU, Restrict(x, q)))
                continue
            if x in action.binders:
                action, target = freshen_action_binders(
                    action, target, frozenset((x,)) | self._freshen_avoid())
            if x in action.objects:
                # Rule (5): scope extrusion.
                out.append((OutputAction(action.chan, action.objects,
                                         action.binders + (x,)), target))
            else:
                # Rule (7): x not involved, keep the restriction.
                out.append((action, Restrict(x, target)))
        return out

    def _par_steps(self, p: Par) -> list[Transition]:
        out: list[Transition] = []
        for active, passive, rebuild in (
            (p.left, p.right, lambda a, b: Par(a, b)),
            (p.right, p.left, lambda a, b: Par(b, a)),
        ):
            for action, target in self.step_transitions(active):
                if isinstance(action, TauAction):
                    out.append((TAU, rebuild(target, passive)))
                    continue
                assert isinstance(action, OutputAction)
                action, target = freshen_action_binders(
                    action, target,
                    frozenset(free_names(passive)) | self._freshen_avoid())
                if self.discards(passive, action.chan):
                    # Rule (14): the passive side cannot hear; unchanged.
                    out.append((action, rebuild(target, passive)))
                else:
                    # Rule (13), backend delivery: every residual the
                    # delivery judgement admits (lossy delivery includes
                    # the "message lost at this listener" residual).
                    for received in self.input_continuations(
                            passive, action.chan, action.objects):
                        out.append((action, rebuild(target, received)))
        return out

    # -------------------------------------------------------- delivery
    def input_continuations(self, p: Process, chan: Name,
                            values: tuple[Name, ...]) -> tuple[Process, ...]:
        memo = self.memo("inputs")
        key = (p, chan, values)
        try:
            return memo[key]
        except KeyError:
            pass
        result = self._compute_inputs(p, chan, values)
        memo[key] = result
        return result

    @abc.abstractmethod
    def _compute_inputs(self, p: Process, chan: Name,
                        values: tuple[Name, ...]) -> tuple[Process, ...]:
        """Uncached delivery judgement; see :meth:`input_continuations`."""


def dichotomy_channels(p: Process,
                       extra: Iterable[Name] = ()) -> frozenset[Name]:
    """Channels worth probing when property-testing the dichotomy."""
    return frozenset(free_names(p)) | frozenset(extra)
