"""CBS — Prasad's Calculus of Broadcasting Systems (the paper's ancestor).

CBS broadcasts *values* on a single, implicit, global medium ("the
ether"); there are no channels, no name creation, no mobility — which is
exactly the limitation the bpi-calculus removes (Sections 1/6: CBS "does
not allow to model reconfigurable finer topologies", and dynamic groups
are inexpressible because scoping is static).

Implemented here:

* a small CBS AST over a finite value alphabet: ``O``, ``v! p``, ``x? p``,
  ``p + q``, ``p | q``, ``rec X. p``;
* its LTS — speak ``v!``, hear ``v?``, discard ``v:`` — with the broadcast
  composition rule (one speaker, everyone else hears or discards);
* strong bisimilarity via the shared partition machinery (labels are from
  the finite alphabet, so plain refinement applies);
* the *ether translation* into the bpi-calculus: one global channel ``e``
  carries the values (as names) — every CBS process is a bpi process that
  never uses mobility.  The correspondence (the translation is a strong
  operational bisimulation) is property-tested in the suite, exhibiting
  bpi as a conservative extension of CBS.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from ..core.builder import call, define
from ..core.syntax import NIL as BPI_NIL
from ..core.syntax import Input as BpiInput
from ..core.syntax import Output as BpiOutput
from ..core.syntax import Par as BpiPar
from ..core.syntax import Process as BpiProcess
from ..core.syntax import Sum as BpiSum

#: The bpi channel standing for CBS's global ether.
ETHER = "ether"


class CbsProcess:
    """Base class of CBS terms (immutable, hashable)."""

    __slots__ = ()

    def __or__(self, other: "CbsProcess") -> "CbsProcess":
        return CbsPar(self, other)

    def __add__(self, other: "CbsProcess") -> "CbsProcess":
        return CbsSum(self, other)


@dataclass(frozen=True)
class CbsNil(CbsProcess):
    """``O`` — the inert process."""

    def __str__(self) -> str:
        return "O"


NIL = CbsNil()


@dataclass(frozen=True)
class Speak(CbsProcess):
    """``v! p`` — broadcast value v, continue as p."""

    value: str
    cont: CbsProcess = NIL

    def __str__(self) -> str:
        return f"{self.value}!({self.cont})"


@dataclass(frozen=True)
class Hear(CbsProcess):
    """``x? p`` — receive any value into x (x is a pattern variable)."""

    var: str
    cont: CbsProcess = NIL

    def __str__(self) -> str:
        return f"{self.var}?({self.cont})"


@dataclass(frozen=True)
class CbsSum(CbsProcess):
    left: CbsProcess
    right: CbsProcess

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


@dataclass(frozen=True)
class CbsPar(CbsProcess):
    left: CbsProcess
    right: CbsProcess

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class CbsRec(CbsProcess):
    """``rec X. p`` — X must be guarded in p."""

    ident: str
    body: CbsProcess

    def __str__(self) -> str:
        return f"rec {self.ident}. {self.body}"


@dataclass(frozen=True)
class CbsVar(CbsProcess):
    """An occurrence of a rec-bound identifier."""

    ident: str

    def __str__(self) -> str:
        return self.ident


def substitute_value(p: CbsProcess, var: str, value: str) -> CbsProcess:
    """Replace the pattern variable *var* by a received *value*.

    Values and variables share a namespace (as in value-passing CCS/CBS);
    a ``Speak`` of a variable broadcasts whatever was received.
    """
    if isinstance(p, CbsNil) or isinstance(p, CbsVar):
        return p
    if isinstance(p, Speak):
        v = value if p.value == var else p.value
        return Speak(v, substitute_value(p.cont, var, value))
    if isinstance(p, Hear):
        if p.var == var:  # shadowed
            return p
        return Hear(p.var, substitute_value(p.cont, var, value))
    if isinstance(p, CbsSum):
        return CbsSum(substitute_value(p.left, var, value),
                      substitute_value(p.right, var, value))
    if isinstance(p, CbsPar):
        return CbsPar(substitute_value(p.left, var, value),
                      substitute_value(p.right, var, value))
    if isinstance(p, CbsRec):
        return CbsRec(p.ident, substitute_value(p.body, var, value))
    raise TypeError(type(p).__name__)


def unfold(p: CbsRec) -> CbsProcess:
    def replace(q: CbsProcess) -> CbsProcess:
        if isinstance(q, CbsVar):
            return p if q.ident == p.ident else q
        if isinstance(q, (CbsNil,)):
            return q
        if isinstance(q, Speak):
            return Speak(q.value, replace(q.cont))
        if isinstance(q, Hear):
            return Hear(q.var, replace(q.cont))
        if isinstance(q, CbsSum):
            return CbsSum(replace(q.left), replace(q.right))
        if isinstance(q, CbsPar):
            return CbsPar(replace(q.left), replace(q.right))
        if isinstance(q, CbsRec):
            return q if q.ident == p.ident else CbsRec(q.ident, replace(q.body))
        raise TypeError(type(q).__name__)

    return replace(p.body)


# ---------------------------------------------------------------------------
# Semantics
# ---------------------------------------------------------------------------

@lru_cache(maxsize=65536)
def speaks(p: CbsProcess) -> tuple[tuple[str, CbsProcess], ...]:
    """All ``p -v!-> p'``."""
    if isinstance(p, (CbsNil, Hear, CbsVar)):
        return ()
    if isinstance(p, Speak):
        return ((p.value, p.cont),)
    if isinstance(p, CbsSum):
        return speaks(p.left) + speaks(p.right)
    if isinstance(p, CbsRec):
        return speaks(unfold(p))
    if isinstance(p, CbsPar):
        out = []
        for v, l2 in speaks(p.left):
            for r2 in hears_or_stays(p.right, v):
                out.append((v, CbsPar(l2, r2)))
        for v, r2 in speaks(p.right):
            for l2 in hears_or_stays(p.left, v):
                out.append((v, CbsPar(l2, r2)))
        return tuple(out)
    raise TypeError(type(p).__name__)


@lru_cache(maxsize=65536)
def hears(p: CbsProcess, v: str) -> tuple[CbsProcess, ...]:
    """All ``p -v?-> p'`` (a hearing process cannot refuse)."""
    if isinstance(p, (CbsNil, Speak, CbsVar)):
        return ()
    if isinstance(p, Hear):
        return (substitute_value(p.cont, p.var, v),)
    if isinstance(p, CbsSum):
        return hears(p.left, v) + hears(p.right, v)
    if isinstance(p, CbsRec):
        return hears(unfold(p), v)
    if isinstance(p, CbsPar):
        ls, rs = hears(p.left, v), hears(p.right, v)
        l_deaf, r_deaf = not ls, not rs
        if l_deaf and r_deaf:
            return ()
        if l_deaf:
            return tuple(CbsPar(p.left, r) for r in rs)
        if r_deaf:
            return tuple(CbsPar(l, p.right) for l in ls)
        return tuple(CbsPar(l, r) for l in ls for r in rs)
    raise TypeError(type(p).__name__)


def discards(p: CbsProcess, v: str) -> bool:
    """``p -v:-> p`` — in CBS a process discards v iff it cannot hear.

    (Every CBS process is listening to the single ether or not; with one
    medium the dichotomy is simply 'has no hear-derivative'.)
    """
    return not hears(p, v)


def hears_or_stays(p: CbsProcess, v: str) -> tuple[CbsProcess, ...]:
    got = hears(p, v)
    return got if got else (p,)


def alphabet(p: CbsProcess) -> frozenset[str]:
    """Values spoken anywhere in *p* (the finite instantiation alphabet)."""
    if isinstance(p, (CbsNil, CbsVar)):
        return frozenset()
    if isinstance(p, Speak):
        return alphabet(p.cont) | {p.value}
    if isinstance(p, Hear):
        return alphabet(p.cont) - {p.var}
    if isinstance(p, (CbsSum, CbsPar)):
        return alphabet(p.left) | alphabet(p.right)
    if isinstance(p, CbsRec):
        return alphabet(p.body)
    raise TypeError(type(p).__name__)


def cbs_transitions(p: CbsProcess, values: frozenset[str],
                    noisy: bool = False) -> Iterator[tuple[str, CbsProcess]]:
    """Full labelled transitions over a value alphabet: ``v!`` and ``v?``.

    With *noisy* the discard ``v:`` appears as a ``v?`` self-loop — CBS's
    bisimilarity (like bpi's Definition 7/8) matches a reception against a
    reception *or a discard*, and the self-loop encodes exactly that for
    partition refinement.
    """
    for v, q in speaks(p):
        yield (f"{v}!", q)
    for v in sorted(values):
        heard = hears(p, v)
        for q in heard:
            yield (f"{v}?", q)
        if noisy and not heard:
            yield (f"{v}?", p)


def cbs_bisimilar(p: CbsProcess, q: CbsProcess, *, noisy: bool = True,
                  budget=None, max_states: int | None = None):
    """Strong bisimilarity of CBS terms via explicit LTS + refinement.

    ``noisy=True`` (the CBS notion): hearing may be answered by a discard,
    so ``x?O ~ O`` — receiving and ignoring is invisible, just as in bpi.
    ``noisy=False`` matches hear-labels strictly (the ~+-style relation).
    Returns a three-valued :class:`~repro.engine.Verdict`.
    """
    from collections import deque

    from ..engine.budget import (
        Budget, BudgetExceeded, legacy_cap, resolve_meter,
    )
    from ..engine.verdict import Verdict

    budget = legacy_cap("cbs_bisimilar", budget, max_states=max_states)
    meter = resolve_meter(budget, Budget(max_states=20_000))

    values = alphabet(p) | alphabet(q) | {"_w"}
    states: list[CbsProcess] = []
    index: dict[CbsProcess, int] = {}
    edges: list[list[tuple[str, int]]] = []

    def intern(r: CbsProcess) -> tuple[int, bool]:
        sid = index.get(r)
        if sid is not None:
            return sid, False
        meter.charge()
        index[r] = sid = len(states)
        states.append(r)
        edges.append([])
        return sid, True

    try:
        queue: deque[int] = deque()
        roots = []
        for r in (p, q):
            sid, fresh = intern(r)
            roots.append(sid)
            if fresh:
                queue.append(sid)
        while queue:
            sid = queue.popleft()
            for label, target in cbs_transitions(states[sid], values,
                                                 noisy=noisy):
                tid, fresh = intern(target)
                edges[sid].append((label, tid))
                if fresh:
                    queue.append(tid)
    except BudgetExceeded as exc:
        return Verdict.from_exceeded(exc)

    labels = sorted({lab for es in edges for lab, _ in es})
    n = len(states)
    # encode labelled refinement by iterating the per-label signatures
    block = [0] * n
    while True:
        signatures: dict[tuple, int] = {}
        new_block = [0] * n
        for s in range(n):
            sig = (block[s], tuple(
                frozenset(block[t] for lab2, t in edges[s] if lab2 == lab)
                for lab in labels))
            new_block[s] = signatures.setdefault(sig, len(signatures))
        if new_block == block:
            break
        block = new_block
    return Verdict.of(block[roots[0]] == block[roots[1]],
                      stats=meter.stats())


# ---------------------------------------------------------------------------
# The ether translation into bpi
# ---------------------------------------------------------------------------

def to_bpi(p: CbsProcess, ether: str = ETHER) -> BpiProcess:
    """Translate a CBS term to a bpi term over one global channel.

    ``v! p`` becomes ``ether<v>.[p]``; ``x? p`` becomes ``ether(x).[p]``;
    everything else is homomorphic.  The translation is a strong
    operational correspondence (tested): speak steps map to broadcasts on
    the ether, hear steps to receptions.
    """
    counter = [0]

    def tr(q: CbsProcess, env: dict[str, str]) -> BpiProcess:
        if isinstance(q, CbsNil):
            return BPI_NIL
        if isinstance(q, Speak):
            return BpiOutput(ether, (q.value,), tr(q.cont, env))
        if isinstance(q, Hear):
            return BpiInput(ether, (q.var,), tr(q.cont, env))
        if isinstance(q, CbsSum):
            return BpiSum(tr(q.left, env), tr(q.right, env))
        if isinstance(q, CbsPar):
            return BpiPar(tr(q.left, env), tr(q.right, env))
        if isinstance(q, CbsVar):
            ident = env.get(q.ident)
            if ident is None:
                raise ValueError(f"unbound CBS identifier {q.ident!r}")
            return call(ident, ether)
        if isinstance(q, CbsRec):
            counter[0] += 1
            ident = f"CBS{counter[0]}_{q.ident}"
            inner_env = dict(env)
            inner_env[q.ident] = ident
            body = tr(q.body, inner_env)
            # Value literals act as global constants: the recursion is
            # parameterised only over the ether channel.
            definition = define(ident, (ether,), lambda _e: body,
                                constants=tuple(sorted(alphabet(q))))
            return definition(ether)
        raise TypeError(type(q).__name__)

    return tr(p, {})
