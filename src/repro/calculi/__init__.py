"""Baseline calculi (CBS, pi), inter-calculus encodings, and the
pluggable calculus-backend registry (:mod:`repro.calculi.registry`)."""

from .backend import BpiBackend, CalculusBackend, StructuralBackend
from .cbs import (
    ETHER,
    CbsNil,
    CbsPar,
    CbsProcess,
    CbsRec,
    CbsSum,
    CbsVar,
    Hear,
    Speak,
    alphabet,
    cbs_transitions,
    hears,
    speaks,
    to_bpi,
)
from .cbs import NIL as CBS_NIL
from .cbs import discards as cbs_discards
from .data import (
    and_gate,
    bool_at,
    cell_at,
    false_at,
    if_then_else,
    not_gate,
    pair_at,
    read_cell,
    true_at,
    unpair,
    write_cell,
)
from .encodings import pi_to_bpi
from .lossy import LossyBackend
from .pi import (
    pi_barbed_bisimilar,
    pi_barbs,
    pi_input_continuations,
    pi_step_transitions,
    pi_tau_successors,
)
from .wireless import Topology, WirelessBackend

__all__ = [
    "BpiBackend", "CalculusBackend", "LossyBackend", "StructuralBackend",
    "Topology", "WirelessBackend",
    "ETHER", "CbsNil", "CbsPar", "CbsProcess", "CbsRec", "CbsSum", "CbsVar",
    "Hear", "Speak", "alphabet", "cbs_transitions", "hears", "speaks",
    "to_bpi", "CBS_NIL", "cbs_discards",
    "and_gate", "bool_at", "cell_at", "false_at", "if_then_else",
    "not_gate", "pair_at", "read_cell", "true_at", "unpair", "write_cell",
    "pi_to_bpi",
    "pi_barbed_bisimilar", "pi_barbs", "pi_input_continuations",
    "pi_step_transitions", "pi_tau_successors",
]
