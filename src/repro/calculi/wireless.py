"""Graph-topology broadcast: channels as cells (cf. arXiv:1701.02526).

The wireless calculi in PAPERS.md attach a connectivity graph to the
network: a broadcast reaches only the nodes adjacent to the sender.  We
transplant the idea onto the bpi-calculus by reading channels as *cells*:
a listener tuned to cell ``b`` hears a broadcast made on cell ``a`` iff
``a == b`` (same cell, plain bpi) or ``a - b`` is an edge of the
:class:`Topology`.  With an empty topology the backend degenerates to the
paper's semantics; adding edges widens reach, so a process physically
between two cells can be modelled by a listener on either.

Delivery is still atomic *within reach*: every listener that can hear
must receive (rule (13)); a listener whose cell is not reachable discards
the broadcast (rule (14)) — that is the wireless discard relation, and
the input/discard dichotomy holds for it verbatim.

Topology mutation (handover, node movement) is modelled at the meta
level: :meth:`Topology.connect` / :meth:`Topology.disconnect` — and the
corresponding :meth:`WirelessBackend.connect` / ``disconnect`` — return a
*new* backend, so a mobility scenario is a sequence of analyses under
evolving graphs (see ``apps/radio.py``).

Alpha-hygiene: the topology names global cells, so a term must not bind
(restrict or abstract) a name that is also a topology cell — the bound
name would be a *different, private* channel that merely shares the
spelling.  :meth:`WirelessBackend.check_sorts` rejects such terms, and
freshly generated binder names always avoid the cell names.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..core.discard import listening_channels as _bpi_listening
from ..core.freenames import free_names
from ..core.names import Name, fresh_name
from ..core.semantics import check_sorts as _bpi_check_sorts
from ..core.semantics import input_capabilities as _bpi_caps
from ..core.substitution import apply_subst, unfold_rec
from ..core.syntax import (
    Ident,
    Input,
    Match,
    Nil,
    Output,
    Par,
    Process,
    Rec,
    Restrict,
    Sum,
    Tau,
)
from .backend import StructuralBackend


@dataclass(frozen=True)
class Topology:
    """An undirected connectivity graph over cell (channel) names."""

    edges: frozenset[tuple[Name, Name]]  # each pair stored sorted

    @classmethod
    def of(cls, *pairs: tuple[Name, Name]) -> "Topology":
        edges = set()
        for a, b in pairs:
            if a == b:
                raise ValueError(f"self-loop {a!r}-{b!r}: a cell always hears itself")
            edges.add((min(a, b), max(a, b)))
        return cls(frozenset(edges))

    @classmethod
    def parse(cls, text: str) -> "Topology":
        """Parse ``"a-b,b-c"`` (empty string: the empty topology)."""
        pairs = []
        for part in filter(None, (s.strip() for s in text.split(","))):
            a, sep, b = part.partition("-")
            if not sep or not a.strip() or not b.strip():
                raise ValueError(
                    f"malformed topology edge {part!r} (expected 'cell-cell')")
            pairs.append((a.strip(), b.strip()))
        return cls.of(*pairs)

    @property
    def cells(self) -> frozenset[Name]:
        return frozenset(n for e in self.edges for n in e)

    def adjacent(self, a: Name, b: Name) -> bool:
        return (min(a, b), max(a, b)) in self.edges

    def hears(self, out_chan: Name, listen_chan: Name) -> bool:
        """Does a listener on *listen_chan* hear a broadcast on *out_chan*?"""
        return out_chan == listen_chan or self.adjacent(out_chan, listen_chan)

    def neighbours(self, a: Name) -> frozenset[Name]:
        return frozenset(y if x == a else x
                         for x, y in self.edges if a in (x, y))

    def connect(self, a: Name, b: Name) -> "Topology":
        if a == b:
            raise ValueError(f"self-loop {a!r}-{b!r}: a cell always hears itself")
        return Topology(self.edges | {(min(a, b), max(a, b))})

    def disconnect(self, a: Name, b: Name) -> "Topology":
        return Topology(self.edges - {(min(a, b), max(a, b))})

    def spec(self) -> str:
        return ",".join(f"{a}-{b}" for a, b in sorted(self.edges))

    def digest(self) -> str:
        """Short stable digest for store keys and ledgers."""
        return hashlib.sha256(self.spec().encode("utf-8")).hexdigest()[:12]


class WirelessBackend(StructuralBackend):
    """The paper's calculus with topology-restricted broadcast reach."""

    name = "wireless"

    def __init__(self, topology: Topology | None = None) -> None:
        super().__init__()
        self.topology = topology if topology is not None else Topology(frozenset())

    @property
    def spec(self) -> str:
        edges = self.topology.spec()
        return f"wireless:{edges}" if edges else "wireless"

    def key(self) -> str:
        if not self.topology.edges:
            return "wireless"
        return f"wireless:{self.topology.digest()}"

    def connect(self, a: Name, b: Name) -> "WirelessBackend":
        return WirelessBackend(self.topology.connect(a, b))

    def disconnect(self, a: Name, b: Name) -> "WirelessBackend":
        return WirelessBackend(self.topology.disconnect(a, b))

    def _freshen_avoid(self) -> frozenset[Name]:
        return self.topology.cells

    # ---------------------------------------------------------- discard
    def discards(self, p: Process, a: Name) -> bool:
        # p discards a broadcast on cell `a` iff none of its (externally
        # addressable) listening cells can hear it.
        hears = self.topology.hears
        return not any(hears(a, b) for b in _bpi_listening(p))

    def input_capabilities(self, p: Process) -> frozenset[tuple[Name, int]]:
        # A listener tuned to cell b at arity k can be reached by a
        # broadcast on b itself or on any adjacent cell.
        caps = set()
        for b, k in _bpi_caps(p):
            caps.add((b, k))
            for a in self.topology.neighbours(b):
                caps.add((a, k))
        return frozenset(caps)

    # ------------------------------------------------------------ sorts
    def check_sorts(self, p: Process) -> dict[Name, int]:
        cells = self.topology.cells
        if cells:
            self._reject_bound_cells(p, cells)
        sorts = _bpi_check_sorts(p)
        # Adjacent cells exchange the same broadcasts, so they must agree
        # on arity wherever both are used.
        for a, b in sorted(self.topology.edges):
            if a in sorts and b in sorts and sorts[a] != sorts[b]:
                raise ValueError(
                    f"cells {a!r} and {b!r} are adjacent but used at "
                    f"arities {sorts[a]} and {sorts[b]}")
        return sorts

    @staticmethod
    def _reject_bound_cells(p: Process, cells: frozenset[Name]) -> None:
        def walk(q: Process) -> None:
            if isinstance(q, Restrict) and q.name in cells:
                raise ValueError(
                    f"topology cell {q.name!r} is restricted in the term; "
                    f"a private channel cannot share a cell name — rename the binder")
            if isinstance(q, Input):
                clash = cells.intersection(q.params)
                if clash:
                    raise ValueError(
                        f"topology cell(s) {sorted(clash)!r} bound as input "
                        f"parameters; rename the parameters")
            for c in q.children():
                walk(c)

        walk(p)

    # --------------------------------------------------------- delivery
    def _compute_inputs(self, p: Process, chan: Name,
                        values: tuple[Name, ...]) -> tuple[Process, ...]:
        if isinstance(p, (Nil, Tau, Output)):
            return ()
        if isinstance(p, Input):
            if not self.topology.hears(chan, p.chan) \
                    or len(p.params) != len(values):
                return ()
            return (apply_subst(p.cont, dict(zip(p.params, values))),)
        if isinstance(p, Sum):
            return (self.input_continuations(p.left, chan, values)
                    + self.input_continuations(p.right, chan, values))
        if isinstance(p, Match):
            branch = p.then if p.left == p.right else p.orelse
            return self.input_continuations(branch, chan, values)
        if isinstance(p, Rec):
            return self.input_continuations(unfold_rec(p), chan, values)
        if isinstance(p, Restrict):
            x, body = p.name, p.body
            # The bound name is a private channel: it must neither capture
            # received values nor spuriously hear the outer broadcast via
            # a topology edge that names its spelling.
            if x in values or self.topology.hears(chan, x):
                nx = fresh_name(free_names(body) | set(values)
                                | self.topology.cells | {chan, x}, hint=x)
                body = apply_subst(body, {x: nx})
                x = nx
            return tuple(Restrict(x, q)
                         for q in self.input_continuations(body, chan, values))
        if isinstance(p, Par):
            left_deaf = self.discards(p.left, chan)
            right_deaf = self.discards(p.right, chan)
            if left_deaf and right_deaf:
                return ()
            if left_deaf:
                return tuple(Par(p.left, r) for r in
                             self.input_continuations(p.right, chan, values))
            if right_deaf:
                return tuple(Par(l, p.right) for l in
                             self.input_continuations(p.left, chan, values))
            lefts = self.input_continuations(p.left, chan, values)
            rights = self.input_continuations(p.right, chan, values)
            return tuple(Par(l, r) for l in lefts for r in rights)
        if isinstance(p, Ident):
            raise ValueError(
                f"cannot take transitions of open process (free identifier {p.ident!r})")
        raise TypeError(f"unknown process node {type(p).__name__}")
