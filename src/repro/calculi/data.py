"""Data encodings in the broadcast calculus.

The classic pi-calculus encodings of data as name-passing protocols, in
broadcast form — exercising the paper's claim that the calculus has full
expressive power (Section 6, via the RAM; here via the structured-data
route).  A datum is a *service* listening at a location channel; reading
is broadcasting a freshly-created reply channel to it.

Broadcast twist: a query reaches **every** service at the location in one
step, so replicated copies answer coherently, and an eavesdropper (e.g. a
monitor) can observe reads without perturbing them — the same effects the
introduction advertises for process monitoring.

Encodings::

    TRUE(b)       = !b(t, f). t!            # answer on the first reply chan
    FALSE(b)      = !b(t, f). f!
    PAIR(p, x, y) = !p(r). r<x, y>
    CELL(c, v)    = c(r).r<v> chained via internal state (mutable)

with the matching readers ``if_then_else``, ``unpair``.
"""

from __future__ import annotations

from ..core.builder import call, define, inp, nu, out, replicate_input
from ..core.names import Name, NameSupply
from ..core.syntax import Process

_supply = NameSupply(prefix="datat")


def true_at(loc: Name) -> Process:
    """``TRUE`` stored at location *loc* (persistent)."""
    return replicate_input(loc, ("t", "f"), out("t"))


def false_at(loc: Name) -> Process:
    """``FALSE`` stored at location *loc* (persistent)."""
    return replicate_input(loc, ("t", "f"), out("f"))


def bool_at(loc: Name, value: bool) -> Process:
    return true_at(loc) if value else false_at(loc)


def if_then_else(loc: Name, then: Process, orelse: Process) -> Process:
    """Query the boolean at *loc* and branch.

    ``nu t nu f loc<t, f>.(t?.then + f?.orelse)`` — the reply channels are
    fresh, so only this reader hears the answer.
    """
    t, f = _supply.take(2)
    return nu((t, f), out(loc, t, f,
                          cont=inp(t, (), then) + inp(f, (), orelse)))


def pair_at(loc: Name, first: Name, second: Name) -> Process:
    """``PAIR(first, second)`` stored at *loc* (persistent)."""
    return replicate_input(loc, ("r",), out("r", first, second),
                           constants=(first, second))


def unpair(loc: Name, params: tuple[Name, Name], body: Process) -> Process:
    """``let (x, y) = !loc in body``."""
    r = _supply.next()
    return nu(r, out(loc, r, cont=inp(r, params, body)))


def cell_at(loc: Name, initial: Name) -> Process:
    """A mutable cell: read with ``loc<get, r>``, write with
    ``loc<set, v>`` (the ``get``/``set`` tags are global names)."""
    definition = define(
        "DataCell", ("c", "v"),
        lambda c, v: inp(c, ("op", "arg"),
                         _cell_dispatch(c, v)),
        constants=("get", "set"))
    return definition(loc, initial)


def _cell_dispatch(c: Name, v: Name) -> Process:
    from ..core.builder import match_eq
    read = out("arg", v, cont=call("DataCell", c, v))
    write = call("DataCell", c, "arg")
    return match_eq("op", "get", read, write)


def read_cell(loc: Name, param: Name, body: Process) -> Process:
    """``let param = !loc in body``."""
    r = _supply.next()
    return nu(r, out(loc, "get", r, cont=inp(r, (param,), body)))


def write_cell(loc: Name, value: Name, cont: Process) -> Process:
    """``loc := value; cont`` (no acknowledgement: broadcast is enough for
    a single-writer discipline; racing writers interleave)."""
    return out(loc, "set", value, cont=cont)


def not_gate(in_loc: Name, out_loc: Name) -> Process:
    """Read the boolean at *in_loc*, store its negation at *out_loc*."""
    return if_then_else(in_loc,
                        false_at(out_loc),
                        true_at(out_loc))


def and_gate(a_loc: Name, b_loc: Name, out_loc: Name) -> Process:
    """Store ``a && b`` at *out_loc* (short-circuit reading)."""
    return if_then_else(a_loc,
                        if_then_else(b_loc,
                                     true_at(out_loc),
                                     false_at(out_loc)),
                        false_at(out_loc))
