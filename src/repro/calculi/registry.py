"""Named registry of calculus backends.

Engine layers resolve a semantics through :func:`resolve` instead of
importing ``core.semantics`` directly (contract Rule E).  A *spec* is

* ``None`` — the default ``"bpi"`` backend;
* a name — ``"bpi"``, ``"lossy"``, ``"wireless"``;
* a parameterised name — ``"wireless:a-b,b-c"`` (the parameter string is
  handed to the backend family's factory);
* an already-constructed :class:`~repro.calculi.backend.CalculusBackend`,
  returned as-is.

Spec strings are plain text, so they are picklable and travel unchanged
to worker processes (``lts/parallel.py`` ships them in shard payloads).
One instance is cached per canonical spec, so per-backend memo tables
persist for the session; :func:`clear_caches` drops them all (wired into
``core.cache.clear_caches``).
"""

from __future__ import annotations

from typing import Callable

from .backend import BpiBackend, CalculusBackend
from .lossy import LossyBackend
from .wireless import Topology, WirelessBackend

_FACTORIES: dict[str, Callable[[str], CalculusBackend]] = {}
_INSTANCES: dict[str, CalculusBackend] = {}


def register(name: str,
             factory: Callable[[str], CalculusBackend]) -> None:
    """Register a backend family under *name*.

    *factory* receives the parameter string (empty when the spec is the
    bare name) and returns a backend instance.
    """
    if not name or ":" in name:
        raise ValueError(f"invalid backend name {name!r}")
    _FACTORIES[name] = factory


def names() -> tuple[str, ...]:
    """The registered backend family names, sorted."""
    return tuple(sorted(_FACTORIES))


def resolve(spec: str | CalculusBackend | None = None) -> CalculusBackend:
    """Resolve *spec* to a (cached) backend instance."""
    if spec is None:
        spec = "bpi"
    if isinstance(spec, CalculusBackend):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"calculus spec must be a name, 'name:params' string, or a "
            f"CalculusBackend (got {type(spec).__name__})")
    name, sep, params = spec.partition(":")
    name = name.strip()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown calculus {name!r} (registered: {', '.join(names())})"
        ) from None
    backend = factory(params.strip() if sep else "")
    # Cache by the *canonical* spec the instance reports, so equivalent
    # spellings ("wireless:b-a", "wireless:a-b") share memo tables.
    return _INSTANCES.setdefault(backend.spec, backend)


def default() -> CalculusBackend:
    """The default (paper) backend."""
    return resolve("bpi")


def clear_caches() -> None:
    """Drop the memo tables of every cached backend instance."""
    for backend in _INSTANCES.values():
        backend.clear_caches()


def _make_bpi(params: str) -> CalculusBackend:
    if params:
        raise ValueError("the 'bpi' backend takes no parameters")
    return BpiBackend()


def _make_lossy(params: str) -> CalculusBackend:
    if params:
        raise ValueError("the 'lossy' backend takes no parameters")
    return LossyBackend()


def _make_wireless(params: str) -> CalculusBackend:
    try:
        return WirelessBackend(Topology.parse(params))
    except ValueError as exc:
        raise ValueError(f"bad 'wireless' backend spec: {exc}") from None


register("bpi", _make_bpi)
register("lossy", _make_lossy)
register("wireless", _make_wireless)
