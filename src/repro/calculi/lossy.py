"""Lossy broadcast: per-listener delivery failure (Cao, arXiv:0801.3117).

In the pi-calculus with noisy channels, a broadcast still happens
atomically, but delivery to **each** listener may independently fail.
Syntactically nothing changes — same terms, same discard relation (Table
2), same barbs.  Semantically, the delivery judgement grows one residual
per listener: the listener itself, unchanged, modelling "the message was
lost on the way to this receiver".

Concretely, where the reliable rule (13) forces the passive side of a
parallel composition to receive, the lossy rule lets every *subset* of
the reachable receivers miss the message: for ``a!.0 | (a?.P | a?.Q)``
the broadcast on ``a`` has four residuals — both receive, only the left,
only the right, neither.  A top-level input transition likewise includes
the pure-loss move ``p -a(v)-> p``.

The input/discard dichotomy survives: a listener now has *more* input
transitions (including the loss move), a non-listener still discards.

The induced bisimilarity is **incomparable** with the reliable one — the
hierarchy is strict in both directions (checked in the suite):

* lossy equates, reliable separates: ``a(x).c! ~ a(x).c! + a(x).a(x).c!``
  — the extra "needs two messages" branch is indistinguishable when any
  message may be lost, but reliable bisimilarity sees the second input
  commit to a state with no ``c`` barb.
* reliable equates, lossy separates: ``a?.c! | a?.d! ~ a?.(c! | d!)`` —
  reliable broadcast is atomic, so both reach ``c! | d!`` in one input;
  lossy delivery can reach the partial ``c! | a?.d!``, which the
  right-hand process can never exhibit.
"""

from __future__ import annotations

from ..core.discard import discards as _bpi_discards
from ..core.discard import listening_channels as _bpi_listening
from ..core.freenames import free_names
from ..core.names import Name, fresh_name
from ..core.semantics import input_capabilities as _bpi_caps
from ..core.substitution import apply_subst, unfold_rec
from ..core.syntax import (
    Ident,
    Input,
    Match,
    Nil,
    Output,
    Par,
    Process,
    Rec,
    Restrict,
    Sum,
    Tau,
)
from .backend import StructuralBackend


class LossyBackend(StructuralBackend):
    """The paper's calculus with per-listener message loss."""

    name = "lossy"

    def discards(self, p: Process, a: Name) -> bool:
        # Loss does not change who is listening — Table 2 verbatim.
        return _bpi_discards(p, a)

    def input_capabilities(self, p: Process) -> frozenset[tuple[Name, int]]:
        return _bpi_caps(p)

    def listening_channels(self, p: Process) -> frozenset[Name]:
        return _bpi_listening(p)

    def _compute_inputs(self, p: Process, chan: Name,
                        values: tuple[Name, ...]) -> tuple[Process, ...]:
        if self.discards(p, chan):
            return ()
        # A listener's delivery options: every genuine (at least one
        # component received) residual, plus total loss — p unchanged.
        return self._genuine(p, chan, values) + (p,)

    def _genuine(self, p: Process, chan: Name,
                 values: tuple[Name, ...]) -> tuple[Process, ...]:
        """Residuals where the message reached at least one receiver."""
        if isinstance(p, (Nil, Tau, Output)):
            return ()
        if isinstance(p, Input):
            if p.chan != chan or len(p.params) != len(values):
                return ()
            return (apply_subst(p.cont, dict(zip(p.params, values))),)
        if isinstance(p, Sum):
            # A reception inside a branch commits the sum; losing the
            # message leaves the whole sum intact (handled by the caller's
            # total-loss residual, not per branch).
            return (self._genuine(p.left, chan, values)
                    + self._genuine(p.right, chan, values))
        if isinstance(p, Match):
            branch = p.then if p.left == p.right else p.orelse
            return self._genuine(branch, chan, values)
        if isinstance(p, Rec):
            return self._genuine(unfold_rec(p), chan, values)
        if isinstance(p, Restrict):
            x, body = p.name, p.body
            if x == chan:
                return ()
            if x in values:
                nx = fresh_name(
                    free_names(body) | set(values) | {chan, x}, hint=x)
                body = apply_subst(body, {x: nx})
                x = nx
            return tuple(Restrict(x, q)
                         for q in self._genuine(body, chan, values))
        if isinstance(p, Par):
            # Each side independently receives or loses; at least one
            # side must genuinely receive for the residual to be genuine.
            def options(side: Process) -> tuple[tuple[Process, bool], ...]:
                if self.discards(side, chan):
                    return ((side, False),)
                return (tuple((g, True)
                              for g in self._genuine(side, chan, values))
                        + ((side, False),))

            out: list[Process] = []
            for lres, lgot in options(p.left):
                for rres, rgot in options(p.right):
                    if lgot or rgot:
                        out.append(Par(lres, rres))
            return tuple(out)
        if isinstance(p, Ident):
            raise ValueError(
                f"cannot take transitions of open process (free identifier {p.ident!r})")
        raise TypeError(f"unknown process node {type(p).__name__}")
