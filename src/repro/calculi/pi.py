"""A mini pi-calculus — the point-to-point baseline the paper argues against.

Reuses the bpi-calculus AST (same grammar, Table 1 minus nothing) but gives
it the standard early pi semantics: communication is a *handshake* — one
sender, exactly one receiver, producing a ``tau`` — instead of a broadcast.
Outputs are blocking; a send with no partner simply waits.

Purpose (Section 6 / Remarks of the paper):

* show the (H) "noisy" axiom failing here while holding in bpi;
* show the congruence-property swap: in pi, barbed bisimilarity is
  preserved by restriction but not by parallel composition — in bpi it is
  exactly the other way around (Lemma 3 vs Remark 1);
* serve as the source language for the uniform pi -> bpi encoding
  (:mod:`repro.calculi.encodings`).

Only the machinery needed for those comparisons is implemented: step
enumeration (tau + visible outputs with extrusion), early input
continuations, barbs, and barbed bisimilarity via the shared partition
refinement.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.actions import TAU, Action, OutputAction, TauAction
from ..core.freenames import free_names
from ..core.names import Name, fresh_name
from ..core.binders import freshen_action_binders
from ..core.substitution import apply_subst, unfold_rec
from ..core.syntax import (
    Ident,
    Input,
    Match,
    Nil,
    Output,
    Par,
    Process,
    Rec,
    Restrict,
    Sum,
    Tau,
)

Transition = tuple[Action, Process]


@lru_cache(maxsize=65536)
def pi_step_transitions(p: Process) -> tuple[Transition, ...]:
    """tau-steps (handshakes) and visible output transitions of *p*."""
    if isinstance(p, (Nil, Input)):
        return ()
    if isinstance(p, Tau):
        return ((TAU, p.cont),)
    if isinstance(p, Output):
        return ((OutputAction(p.chan, p.args, ()), p.cont),)
    if isinstance(p, Sum):
        return pi_step_transitions(p.left) + pi_step_transitions(p.right)
    if isinstance(p, Match):
        branch = p.then if p.left == p.right else p.orelse
        return pi_step_transitions(branch)
    if isinstance(p, Rec):
        return pi_step_transitions(unfold_rec(p))
    if isinstance(p, Restrict):
        out: list[Transition] = []
        x = p.name
        for action, target in pi_step_transitions(p.body):
            if isinstance(action, TauAction):
                out.append((TAU, Restrict(x, target)))
                continue
            assert isinstance(action, OutputAction)
            if action.chan == x:
                continue  # blocked: no partner can ever reach the channel
            if x in action.binders:
                action, target = freshen_action_binders(
                    action, target, frozenset((x,)))
            if x in action.objects:
                out.append((OutputAction(action.chan, action.objects,
                                         action.binders + (x,)), target))
            else:
                out.append((action, Restrict(x, target)))
        return tuple(out)
    if isinstance(p, Par):
        out = []
        # interleaving
        for action, target in pi_step_transitions(p.left):
            if isinstance(action, OutputAction):
                action, target = freshen_action_binders(
                    action, target, free_names(p.right))
            out.append((action, Par(target, p.right)))
        for action, target in pi_step_transitions(p.right):
            if isinstance(action, OutputAction):
                action, target = freshen_action_binders(
                    action, target, free_names(p.left))
            out.append((action, Par(p.left, target)))
        # handshakes: one sender + ONE receiver -> tau (the pi difference)
        for sender, receiver, build in (
                (p.left, p.right, lambda s, r: Par(s, r)),
                (p.right, p.left, lambda s, r: Par(r, s))):
            for action, s_target in pi_step_transitions(sender):
                if not isinstance(action, OutputAction):
                    continue
                action, s_target = freshen_action_binders(
                    action, s_target, free_names(receiver))
                for r_target in pi_input_continuations(
                        receiver, action.chan, action.objects):
                    combined = build(s_target, r_target)
                    for b in reversed(action.binders):
                        combined = Restrict(b, combined)
                    out.append((TAU, combined))
        return tuple(out)
    if isinstance(p, Ident):
        raise ValueError(f"open process (free identifier {p.ident!r})")
    raise TypeError(f"unknown process node {type(p).__name__}")


@lru_cache(maxsize=65536)
def pi_input_continuations(p: Process, chan: Name,
                           values: tuple[Name, ...]) -> tuple[Process, ...]:
    """Early input: all p' with ``p -chan(values)-> p'`` (pi rules).

    Unlike broadcast, a parallel composition receives in exactly *one*
    component; the other is untouched.
    """
    if isinstance(p, (Nil, Tau, Output)):
        return ()
    if isinstance(p, Input):
        if p.chan != chan or len(p.params) != len(values):
            return ()
        return (apply_subst(p.cont, dict(zip(p.params, values))),)
    if isinstance(p, Sum):
        return (pi_input_continuations(p.left, chan, values)
                + pi_input_continuations(p.right, chan, values))
    if isinstance(p, Match):
        branch = p.then if p.left == p.right else p.orelse
        return pi_input_continuations(branch, chan, values)
    if isinstance(p, Rec):
        return pi_input_continuations(unfold_rec(p), chan, values)
    if isinstance(p, Restrict):
        x, body = p.name, p.body
        if x == chan:
            return ()
        if x in values:
            nx = fresh_name(free_names(body) | set(values) | {chan, x}, hint=x)
            body = apply_subst(body, {x: nx})
            x = nx
        return tuple(Restrict(x, q)
                     for q in pi_input_continuations(body, chan, values))
    if isinstance(p, Par):
        lefts = [Par(q, p.right)
                 for q in pi_input_continuations(p.left, chan, values)]
        rights = [Par(p.left, q)
                  for q in pi_input_continuations(p.right, chan, values)]
        return tuple(lefts + rights)
    if isinstance(p, Ident):
        raise ValueError(f"open process (free identifier {p.ident!r})")
    raise TypeError(f"unknown process node {type(p).__name__}")


@lru_cache(maxsize=65536)
def pi_barbs(p: Process) -> frozenset[Name]:
    """Output barbs of *p* under pi semantics."""
    return frozenset(a.chan for a, _ in pi_step_transitions(p)
                     if isinstance(a, OutputAction))


def pi_tau_successors(p: Process) -> tuple[Process, ...]:
    return tuple(t for a, t in pi_step_transitions(p)
                 if isinstance(a, TauAction))


def pi_barbed_bisimilar(p: Process, q: Process, *, weak: bool = False,
                        budget=None, max_states: int | None = None):
    """Barbed bisimilarity under pi semantics (for the comparative tests).

    Returns a three-valued :class:`~repro.engine.Verdict`.
    """
    from collections import deque

    from ..core.canonical import canonical_alpha
    from ..engine.budget import (
        Budget, BudgetExceeded, legacy_cap, resolve_meter,
    )
    from ..engine.verdict import Verdict
    from ..lts.partition import coarsest_partition
    from ..lts.weak import reachability_closure, weak_keys

    budget = legacy_cap("pi_barbed_bisimilar", budget, max_states=max_states)
    meter = resolve_meter(budget, Budget(max_states=20_000))

    states: list[Process] = []
    index: dict[Process, int] = {}
    succ: list[set[int]] = []
    keys: list[frozenset[Name]] = []

    def intern(r: Process) -> tuple[int, bool]:
        c = canonical_alpha(r)
        sid = index.get(c)
        if sid is not None:
            return sid, False
        meter.charge()
        index[c] = sid = len(states)
        states.append(c)
        succ.append(set())
        keys.append(pi_barbs(c))
        return sid, True

    try:
        queue: deque[int] = deque()
        roots = []
        for r in (p, q):
            sid, fresh = intern(r)
            roots.append(sid)
            if fresh:
                queue.append(sid)
        while queue:
            sid = queue.popleft()
            for t in pi_tau_successors(states[sid]):
                tid, fresh = intern(t)
                succ[sid].add(tid)
                if fresh:
                    queue.append(tid)
        frozen = [frozenset(s) for s in succ]
        if weak:
            closure = reachability_closure(frozen)
            block = coarsest_partition(closure, weak_keys(closure, keys),
                                       budget=meter)
        else:
            block = coarsest_partition(frozen, keys, budget=meter)
    except BudgetExceeded as exc:
        return Verdict.from_exceeded(exc)
    return Verdict.of(block[roots[0]] == block[roots[1]],
                      stats=meter.stats())
