#!/usr/bin/env python
"""Example 2 of the paper: consistency of partitioned replicated databases.

While the network is partitioned, transactions run independently; on
reconnection the fully distributed detector decides serialisability by
materialising the precedence graph as processes — transaction identifiers
are channels, so a cycle literally broadcasts `error`.

Run:  python examples/transactions_demo.py
"""

import time

from repro.apps.transactions import (
    Transaction,
    detects_inconsistency,
    is_consistent_reference,
    precedence_edges,
)

T = Transaction

SCENARIOS = {
    "independent reads": [
        T("t1", "r", "stock", "west"),
        T("t2", "r", "stock", "east"),
    ],
    "split-brain double write": [
        T("t1", "w", "stock", "west"),
        T("t2", "w", "stock", "east"),
    ],
    "serial same-partition history": [
        T("t1", "w", "stock", "west"),
        T("t2", "r", "stock", "west"),
        T("t2", "w", "price", "west"),
    ],
    "cross-partition read/write cycle": [
        T("t1", "r", "stock", "west"),
        T("t2", "w", "stock", "east"),
        T("t2", "r", "price", "east"),
        T("t1", "w", "price", "west"),
    ],
    "cross-partition but acyclic": [
        T("t1", "r", "stock", "west"),
        T("t2", "w", "stock", "east"),
    ],
}


def main() -> None:
    print(f"{'scenario':36s} {'process system':16s} {'reference':12s} {'time':>7s}")
    for name, log in SCENARIOS.items():
        t0 = time.time()
        error = detects_inconsistency(log)
        consistent = is_consistent_reference(log)
        mark = "ok" if error == (not consistent) else "MISMATCH!"
        print(f"{name:36s} {'INCONSISTENT' if error else 'consistent':16s} "
              f"{'consistent' if consistent else 'INCONSISTENT':12s} "
              f"{time.time()-t0:6.2f}s  {mark}")

    print("\nPrecedence edges of the cyclic scenario:")
    log = SCENARIOS["cross-partition read/write cycle"]
    for src, dst in sorted(precedence_edges(log)):
        print(f"  {src} -> {dst}")
    print("(a 2-cycle: the partitioned histories cannot be serialised)")


if __name__ == "__main__":
    main()
