#!/usr/bin/env python
"""Section 6: point-to-point versus broadcast, executably.

* a pi handshake translated to a broadcast session protocol (pi -> bpi);
* the atomicity gap behind "no uniform encoding of bpi into pi";
* the congruence-property swap between the two calculi.

Run:  python examples/pi_encoding_demo.py
"""

from repro.calculi.encodings import pi_to_bpi
from repro.calculi.pi import pi_barbed_bisimilar, pi_step_transitions
from repro.core import parse, pretty, step_transitions
from repro.core.actions import OutputAction
from repro.core.reduction import can_reach_barb
from repro.engine import Budget
from repro.equiv.barbed import strong_barbed_bisimilar


def main() -> None:
    print("1) One broadcast, two receivers — in ONE step")
    system = parse("a! | a?.c! | a?.d!")
    print("   system:", pretty(system))
    bpi = [pretty(t) for act, t in step_transitions(system)
           if isinstance(act, OutputAction)]
    print("   bpi after the single `a` step:", bpi)
    pi = [pretty(t) for act, t in pi_step_transitions(system)]
    print("   pi can only serve one receiver per step:")
    for t in pi:
        print("     ", t)
    print("   (this atomicity gap is why bpi has no uniform pi encoding)")

    print("\n2) pi handshake as a broadcast session protocol")
    src = parse("a<v>.done! | a(x).x!")
    enc = pi_to_bpi(src)
    print("   source (pi):   ", pretty(src))
    print("   encoding size: ", enc.size(), "nodes")
    print("   reaches done:  ",
          can_reach_barb(enc, "done", budget=Budget(max_states=30_000),
                         collapse_duplicates=True))
    print("   delivers v:    ",
          can_reach_barb(enc, "v", budget=Budget(max_states=30_000),
                         collapse_duplicates=True))

    print("\n3) The congruence-property swap")
    p, q = parse("a<b>"), parse("a<b>.c<d>")
    print("   p = a<b>     q = a<b>.c<d>      (barbed-bisimilar in both)")
    print(f"   bpi:  nu a breaks it:  {not strong_barbed_bisimilar(parse('nu a a<b>'), parse('nu a a<b>.c<d>'))}"
          f"   | r preserves it: {strong_barbed_bisimilar(p | parse('a(x).0'), q | parse('a(x).0'))}")
    print(f"   pi:   nu a preserves:  {pi_barbed_bisimilar(parse('nu a a<b>'), parse('nu a a<b>.c<d>'))}"
          f"   | r breaks it:    {not pi_barbed_bisimilar(p | parse('a(x).0'), q | parse('a(x).0'))}")
    print("   — restriction and parallel composition swap roles between")
    print("     the point-to-point and the broadcast world (Lemma 3/Remark 1).")


if __name__ == "__main__":
    main()
