#!/usr/bin/env python
"""Example 1 of the paper: distributed cycle detection, end to end.

Every edge of a digraph becomes an autonomous process; private tokens are
broadcast along edges; a token coming home means a cycle.  The demo runs
the detector on a family of graphs and checks it against networkx.

Run:  python examples/cycle_detection_demo.py
"""

import time

from repro.apps.cycle_detection import (
    detects_cycle,
    has_cycle_reference,
    prefed_system,
    simulate,
)
from repro.core import pretty

GRAPHS = {
    "single edge": [("a", "b")],
    "self loop": [("a", "a")],
    "2-cycle": [("a", "b"), ("b", "a")],
    "chain": [("a", "b"), ("b", "c"), ("c", "d")],
    "triangle": [("a", "b"), ("b", "c"), ("c", "a")],
    "lasso": [("a", "b"), ("b", "c"), ("c", "b")],
    "diamond (acyclic)": [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
    "diamond + back edge": [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"),
                            ("d", "a")],
}


def main() -> None:
    print("The edge-manager process for edge (a, b):")
    from repro.apps.cycle_detection import edge_manager
    print(" ", pretty(edge_manager("o", "a", "b")))
    print()

    print(f"{'graph':24s} {'verdict':10s} {'reference':10s} {'time':>8s}")
    for name, edges in GRAPHS.items():
        t0 = time.time()
        got = detects_cycle(edges)
        ref = has_cycle_reference(edges)
        mark = "ok" if got == ref else "MISMATCH!"
        print(f"{name:24s} {'cycle' if got else 'clean':10s} "
              f"{'cycle' if ref else 'clean':10s} {time.time()-t0:7.2f}s  {mark}")

    print("\nA seeded run of the triangle system (first 12 events):")
    trace = simulate(GRAPHS["triangle"], seed=1, max_steps=600, prefed=True)
    for event in trace.events[:12]:
        print("  ", event)
    print(f"  ... cycle signalled: {trace.observed('o')} "
          f"after {trace.steps} steps")


if __name__ == "__main__":
    main()
