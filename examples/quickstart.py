#!/usr/bin/env python
"""Quickstart: build broadcast processes, step them, compare them.

Run:  python examples/quickstart.py
"""

from repro.core import (
    NameUniverse,
    free_names,
    parse,
    pretty,
    step_transitions,
    transitions,
)
from repro.equiv import (
    congruent,
    strong_barbed_bisimilar,
    strong_bisimilar,
    strong_step_bisimilar,
    weak_bisimilar,
)


def show(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    show("Parsing and printing")
    p = parse("nu v (b<v> | a(w).[w=v]{o!}{b<w>})")
    print("term:      ", pretty(p))
    print("free names:", sorted(free_names(p)))

    show("Broadcast semantics (Table 3)")
    # One sender, many receivers, in a single step:
    system = parse("chan<msg> | chan(x).x! | chan(y).y! | other(z).z!")
    for action, target in step_transitions(system):
        print(f"  --{action}-->  {pretty(target)}")
    print("note: both chan-listeners received in ONE broadcast;")
    print("      the other-listener was passed by (rule 14).")

    show("A listener cannot refuse; a non-listener cannot observe")
    u = NameUniverse(free_names(parse("a(x).x!")), n_fresh=1)
    for action, target in transitions(parse("a(x).x!"), u):
        print(f"  --{action}-->  {pretty(target)}")

    show("Scope extrusion to many receivers (rule 5)")
    extruder = parse("nu tok (a<tok> | a(x).x? | a(y).y?)")
    for action, target in step_transitions(extruder):
        print(f"  --{action}-->  {pretty(target)}")
    print("one bound output exported the private token to both receivers.")

    show("The three equivalences (Theorem 1 territory)")
    pairs = [
        ("a?", "0"),
        ("a!", "b!"),
        ("tau.a!", "a!"),
        ("a! | b?", "a!.b? + b?.(a! | 0)"),
    ]
    for lhs, rhs in pairs:
        pl, pr = parse(lhs), parse(rhs)
        print(f"  {lhs:28s} vs {rhs:28s}"
              f"  barbed={strong_barbed_bisimilar(pl, pr)!s:5s}"
              f"  step={strong_step_bisimilar(pl, pr)!s:5s}"
              f"  labelled={strong_bisimilar(pl, pr)!s:5s}"
              f"  weak={weak_bisimilar(pl, pr)!s:5s}")
    print("('a? ~ 0': receiving and ignoring is invisible — broadcast's")
    print(" signature 'noisy' law; all three strong checkers agree.)")

    show("Congruence is finer (Remark 4)")
    p1 = parse("x!.y?.c! + y?.(x! | c!)")
    q1 = parse("x! | y?.c!")
    print("expansion pair bisimilar:  ", strong_bisimilar(p1, q1))
    witness: list = []
    print("congruent:                 ", congruent(p1, q1, witness=witness))
    print("distinguishing substitution:", witness[0] if witness else None)


if __name__ == "__main__":
    main()
