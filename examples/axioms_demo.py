#!/usr/bin/env python
"""The axiomatisation at work: proofs, normal forms, decisions.

Run:  python examples/axioms_demo.py
"""

from repro.axioms.conditions import Partition, all_partitions
from repro.axioms.decide import congruent_finite, rebuild_sum
from repro.axioms.nf import head_summands
from repro.axioms.proofs import normalize, prove_equal
from repro.core import free_names, parse, pretty
from repro.equiv import congruent, strict_bisimilar, strong_bisimilar


def main() -> None:
    print("1) An equational proof in the system A")
    lhs = parse("nu z ((a! + b!) + (b! + a!))")
    rhs = parse("b! + a! + 0")
    derivation = prove_equal(lhs, rhs)
    print(derivation)
    print("   certificate valid:", derivation.check(semantic=True))

    print("\n2) Head normal forms under complete conditions (Lemma 16)")
    p = parse("nu x (a<x>.x? | a(y).y!)")
    part = Partition.discrete(free_names(p))
    print("   p  =", pretty(p))
    for prefix, cont in head_summands(p, part):
        print(f"     summand:  {prefix} . {pretty(cont)}")
    h = rebuild_sum(head_summands(p, part))
    print("   hnf ~ p:", strong_bisimilar(p, h))

    print("\n3) Conditions are partitions: expansion under [a=b]")
    q = parse("a<c> | b(x).x!")
    for blocks in [[["a"], ["b"], ["c"]], [["a", "b"], ["c"]]]:
        part = Partition.of(blocks)
        summands = head_summands(q, part)
        shape = "; ".join(f"{pre}.{pretty(cont)}" for pre, cont in summands)
        print(f"   under {part}:  {shape}")

    print("\n4) The decision procedure vs the semantic checker")
    pairs = [
        ("a! + a!", "a!"),
        ("tau.(b? | 0)", "tau.b?"),
        ("a?", "0"),
        ("a!.b!", "a!"),
    ]
    for l, r in pairs:
        syn = congruent_finite(parse(l), parse(r))
        sem = congruent(parse(l), parse(r))
        print(f"   {l:16s} ~c {r:12s}  syntactic={syn!s:5s} semantic={sem!s:5s}"
              f"  {'agree' if syn == sem else 'DISAGREE!'}")

    print("\n5) The (H) axiom — the broadcast-specific law")
    lhs = parse("a!.b<c>")
    rhs = parse("a!.(b<c> + h(x).b<c>)")
    print("   a!.p = a!.(p + h(x).p):",
          congruent(lhs, rhs), "(congruent: the noisy summand is invisible)")
    print("   yet p != p + h(x).p at top level:",
          not strict_bisimilar(parse("b<c>"), parse("b<c> + h(x).b<c>")))

    print(f"\n   (Bell numbers at work: {sum(1 for _ in all_partitions(frozenset('abcd')))}"
          " complete conditions on 4 names)")


if __name__ == "__main__":
    main()
