#!/usr/bin/env python
"""Packet-radio reliable multicast — lossy broadcast + retransmission.

The paper's introduction names Packet Radio Networks as a target domain;
this demo builds the canonical stop-and-wait multicast over a dropping
medium and verifies its properties.

Run:  python examples/radio_demo.py
"""

from repro.apps.radio import (
    can_deliver,
    reliable_network,
    unreliable_network,
)
from repro.core.reduction import barbs, can_reach_barb
from repro.engine import Budget
from repro.runtime.analysis import find_quiescent
from repro.runtime.simulator import run


def main() -> None:
    print("1) Reliable multicast over a lossy medium")
    system = reliable_network("frame1", ["rx_a", "rx_b"])
    print("   rx_a can receive frame1:", can_deliver(system, "rx_a", "frame1"))
    print("   rx_b can receive frame1:", can_deliver(system, "rx_b", "frame1"))
    print("   sender can learn completion:",
          can_reach_barb(system, "sent_ok", budget=Budget(max_states=60_000),
                         collapse_duplicates=True))

    print("\n2) The fire-and-forget baseline really loses frames")
    from repro.apps.radio import _delivery_probe
    from repro.core.builder import par
    from repro.core.discard import discards
    naive = par(unreliable_network("frame1", ["rx_a"]),
                _delivery_probe("rx_a", "frame1", "got"))
    quiescent = find_quiescent(naive, budget=Budget(max_states=20_000))
    lost = [s for s in quiescent if not discards(s, "rx_a")]
    print(f"   quiescent outcomes: {len(quiescent)}; frame lost in"
          f" {len(lost)} of them (watcher still waiting)")

    print("\n3) A sample run (seeded) of the reliable protocol")
    trace = run(reliable_network("frame1", ["rx_a"]), seed=5, max_steps=600,
                stop_on_barb="sent_ok")
    retransmissions = len(trace.payloads("air"))
    print(f"   transmissions on air: {retransmissions};"
          f" completed: {trace.observed('sent_ok')}")

    print("\n4) Cellular coverage and handover (the 'wireless' backend)")
    from repro.apps.radio import (
        base_station,
        can_hear,
        cellular_backend,
        handover,
        mobile_station,
    )
    from repro.core.builder import par as compose
    city = compose(base_station("cell_east", "frame2"),
                   base_station("cell_west", "frame3"),
                   mobile_station("mob", "screen"))
    east = cellular_backend(("mob", "cell_east"))
    print("   attached to east, hears east broadcast:",
          can_hear(city, "screen", calculus=east))
    print("   west cell is out of range:",
          can_hear(compose(base_station("cell_west", "frame3"),
                           mobile_station("mob", "screen")),
                   "screen", calculus=east))
    west = handover(east, "mob", "cell_east", "cell_west")
    print("   after handover to west, hears west broadcast:",
          can_hear(compose(base_station("cell_west", "frame3"),
                           mobile_station("mob", "screen")),
                   "screen", calculus=west))


if __name__ == "__main__":
    main()
