#!/usr/bin/env python
"""Publish/subscribe over broadcast — the introduction's promises, live.

Run:  python examples/pubsub_demo.py
"""

from repro.apps.pubsub import (
    delivered,
    late_subscriber,
    monitor,
    network,
    publisher,
    subscriber,
)
from repro.core.builder import out, par
from repro.engine import Budget


def main() -> None:
    print("1) Every subscriber gets every payload (anonymous interaction)")
    system = network(["headline"], ["alice", "bob"])
    for who in ("alice", "bob", "eve"):
        got = delivered(system, who, "headline",
                        budget=Budget(max_states=8_000 if who == "eve" else 60_000))
        print(f"   {who:6s}: {'delivered' if got else 'nothing'}"
              + ("" if who != "eve" else "   (never subscribed)"))

    print("\n2) Receivers added without touching the emitter")
    system = par(publisher(["m1", "m2"]),
                 subscriber("alice"),
                 late_subscriber("go", "bob"),
                 out("go"))
    print("   late subscriber bob gets m2:", delivered(system, "bob", "m2"))

    print("\n3) Monitoring without modifying the observed process")
    base = network(["m1"], ["alice"])
    observed = network(["m1"], ["alice"], monitors=["log"])
    print("   monitor sees traffic:       ", delivered(observed, "log", "m1"))
    print("   delivery unaffected:        ", delivered(observed, "alice", "m1")
          == delivered(base, "alice", "m1") is True)

    print("\nThe publisher term (oblivious to its audience):")
    from repro.core import pretty
    print("  ", pretty(publisher(["m1"])))


if __name__ == "__main__":
    main()
