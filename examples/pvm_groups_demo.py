#!/usr/bin/env python
"""Example 3 of the paper: PVM-style group communication.

Tasks own broadcast-fed mailboxes; groups are channels; membership is a
pool listening on the group channel.  The headline: a task can join a
group whose *name it received* — dynamic regrouping through name mobility,
which neither CBS (no mobility) nor the pi-calculus (no broadcast)
expresses directly.

Run:  python examples/pvm_groups_demo.py
"""

from repro.apps.pvm import (
    Bcast,
    Emit,
    JoinGroup,
    NewGroup,
    Receive,
    Send,
    Spawn,
    machine,
)
from repro.core.reduction import can_reach_barb
from repro.engine import Budget


def reaches(system, chan, budget=80_000):
    return can_reach_barb(system, chan, budget=Budget(max_states=budget),
                          collapse_duplicates=True)


def main() -> None:
    print("1) Group broadcast reaches every member, non-members unaffected")
    system = machine({
        "alice": [JoinGroup("news"), Receive("x"), Emit("alice_saw", "x")],
        "bob": [JoinGroup("news"), Receive("x"), Emit("bob_saw", "x")],
        "eve": [Receive("x"), Emit("eve_saw", "x")],
        "agency": [Bcast("news", "headline")],
    })
    print("   alice delivered:", reaches(system, "alice_saw"))
    print("   bob   delivered:", reaches(system, "bob_saw"))
    print("   eve   delivered:", reaches(system, "eve_saw", budget=4_000),
          "(never joined)")

    print("\n2) Dynamic groups: joining a group you were told about")
    system = machine({
        "owner": [NewGroup("g"), Send("worker", "g"),
                  Receive("ready"), Bcast("g", "job")],
        "worker": [Receive("gname"), JoinGroup("gname"),
                   Send("owner", "ok"), Receive("m"),
                   Emit("worker_got", "m")],
    })
    print("   worker received via learned group:",
          reaches(system, "worker_got"))

    print("\n3) Spawning children (PVM task creation)")
    system = machine({
        "root": [Spawn("kid", [Receive("x"), Emit("kid_got", "x")]),
                 Send("kid", "payload")],
    })
    print("   spawned child served:", reaches(system, "kid_got"))

    print("\n4) The mailbox protocol in the raw (Pool/Cell broadcast idiom)")
    from repro.apps.pvm import encode_task
    from repro.core import pretty
    task = encode_task([Receive("x"), Emit("seen", "x")], "addr")
    print("   {receive; emit}_addr =")
    print("   ", pretty(task)[:120], "...")


if __name__ == "__main__":
    main()
