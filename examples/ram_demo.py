#!/usr/bin/env python
"""Section 6: a Random Access Machine running on broadcast semantics.

Registers are linked stacks of one-shot cells chained by private names —
each pop *receives* the next stack pointer (mobility at work).  The demo
runs arithmetic programs on both the reference interpreter and the encoded
machine and compares observable behaviour.

Run:  python examples/ram_demo.py
"""

import time

from repro.apps.ram import (
    emitted_channels,
    encode,
    program_add,
    program_emit_register,
    run_encoded,
    run_reference,
)


def main() -> None:
    print("1) Draining a register (value 4) — 'print' via broadcasts")
    prog = program_emit_register("r", "tick")
    regs, emitted = run_reference(prog, {"r": 4})
    print("   reference: emitted", len(emitted), "ticks, final", regs)
    t0 = time.time()
    trace = run_encoded(prog, {"r": 4}, max_steps=8_000)
    print(f"   encoded:   emitted {len(emitted_channels(trace, prog))} ticks,"
          f" halted={trace.observed('halted')},"
          f" {trace.steps} process steps, {time.time()-t0:.2f}s")

    print("\n2) Addition: x + y by destructive transfer, then drain")
    prog = program_add("x", "y", "sum")
    for x, y in [(2, 3), (4, 1), (0, 5)]:
        _, ref = run_reference(prog, {"x": x, "y": y})
        trace = run_encoded(prog, {"x": x, "y": y}, max_steps=20_000)
        got = len(emitted_channels(trace, prog))
        print(f"   {x} + {y}: reference {len(ref)}, encoded {got},"
              f" halted={trace.observed('halted')}"
              f"  {'ok' if got == len(ref) == x + y else 'MISMATCH!'}")

    print("\n3) The machine as a process")
    system = encode(program_emit_register("r", "tick"), {"r": 2})
    print(f"   {system.size()} AST nodes;"
          " labels are channels, the PC is a broadcast token,")
    print("   registers are chains of cells linked by private names.")


if __name__ == "__main__":
    main()
