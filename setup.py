"""Setup shim.

The environment is offline and lacks the ``wheel`` package, so PEP 660
editable installs fail; this shim lets ``pip install -e .`` fall back to
the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
